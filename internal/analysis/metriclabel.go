package analysis

import (
	"go/ast"
	"go/types"
)

// metricsPkgPath is the labeled metrics package whose registration
// surface the metriclabel rule guards.
const metricsPkgPath = "voiceguard/internal/metrics"

// metricRegistrars are the metrics functions and Registry methods
// whose (single) argument names a metric family.
var metricRegistrars = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"NewCounterVec": true, "NewGaugeVec": true, "NewHistogramVec": true,
}

// constLabelFields are the Labels fields whose values must come from
// constant expressions: Stage and Verdict are closed enumerations, so
// a dynamic value is either a typo the exposition schema silently
// absorbs or an unbounded cardinality source. Home, Speaker, and
// Profile stay dynamic by design — they carry the tenant, device, and
// fault-profile dimensions.
var constLabelFields = map[string]bool{"Stage": true, "Verdict": true}

// MetricLabel pins the exposition schema down statically: every
// metric family name passed to a registration call must be a
// package-level constant (greppable, reviewable, collision-checked at
// one site), and the closed label dimensions (Stage, Verdict) of a
// metrics.Labels literal must be constant expressions.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "metric names must be package-level constants; Labels.Stage and Labels.Verdict must be constant expressions",
	Run:  runMetricLabel,
}

func runMetricLabel(pass *Pass) {
	// The metrics package itself forwards caller-supplied names
	// (NewCounter -> Default.Counter) and builds the overflow child's
	// label set dynamically; the rule binds its callers.
	if pass.PkgPath == metricsPkgPath {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkMetricName(pass, n)
			case *ast.CompositeLit:
				checkLabelsLiteral(pass, n)
			}
			return true
		})
	}
}

// checkMetricName flags registration calls whose name argument is not
// a package-level constant.
func checkMetricName(pass *Pass, call *ast.CallExpr) {
	fn := callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkgPath ||
		!metricRegistrars[fn.Name()] || len(call.Args) != 1 {
		return
	}
	if isPackageConst(pass.Info, call.Args[0]) {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"metric name passed to metrics.%s must be a package-level constant; name the family in a const block so the exposition schema stays greppable and collision-checked",
		fn.Name())
}

// isPackageConst reports whether e is an identifier (or selector)
// naming a constant declared at package scope.
func isPackageConst(info *types.Info, e ast.Expr) bool {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	return ok && c.Pkg() != nil && c.Parent() == c.Pkg().Scope()
}

// checkLabelsLiteral flags metrics.Labels composite literals whose
// Stage or Verdict value is not a constant expression.
func checkLabelsLiteral(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isMetricsLabels(tv.Type) {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		field := ""
		value := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			id, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				continue
			}
			field, value = id.Name, kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i).Name()
		}
		if !constLabelFields[field] {
			continue
		}
		if vtv, ok := pass.Info.Types[value]; ok && vtv.Value != nil {
			continue
		}
		pass.Reportf(value.Pos(),
			"Labels.%s must be a constant expression: stage and verdict are closed enumerations, and a dynamic value is an unbounded cardinality source (Home/Speaker/Profile carry the dynamic dimensions)",
			field)
	}
}

// isMetricsLabels reports whether t is metrics.Labels.
func isMetricsLabels(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == metricsPkgPath && obj.Name() == "Labels"
}
