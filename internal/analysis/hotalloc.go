package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotFuncs designates the allocation-free hot paths: the per-sample
// radio field, the wall-loss memo, the zero-copy proxy pumps, and the
// per-packet spike classifiers. PR 3 pinned these at 0 allocs/op in
// BenchmarkRadioSample / BenchmarkProxyThroughput; this rule keeps
// the cheap-to-introduce allocation sources (formatting, string
// concatenation, string<->[]byte conversions) out of them
// mechanically. Functions are matched by name within the package, so
// methods are listed by bare method name.
var hotFuncs = map[string]map[string]bool{
	"voiceguard/internal/radio": {
		"PathRSSI": true, "Mean": true, "shadowAt": true,
		"shadowAtUncached": true, "Sample": true, "AverageAt": true,
		"SampleBatch": true, "SampleRepeat": true, "AverageAtBatch": true,
		"MeanBatch": true, "SampleFromMeans": true,
	},
	"voiceguard/internal/floorplan": {
		"WallLoss": true, "wallLossUncached": true, "LineOfSight": true,
		"shardFor": true, "get": true, "put": true,
	},
	"voiceguard/internal/proxy": {
		"clientToServer": true, "serverToClient": true, "forward": true,
		"startSession": true, "StartsBurst": true,
	},
	"voiceguard/internal/metrics": {
		"with": true, "With": true, "Inc": true, "Add": true, "Set": true,
		"Observe": true, "ObserveExemplar": true, "ObserveN": true,
		"bucketIndex": true,
	},
	"voiceguard/internal/recognize": {
		"ClassifyEchoSpike": true, "ClassifyNaive": true,
		"matchesCommandFallback": true, "hasWithin": true, "hasAdjacent": true,
		"Feed": true, "feedEcho": true, "feedGHM": true, "tryDecide": true,
	},
	"voiceguard/internal/fleet": {
		"shardFor": true, "step": true, "runRound": true,
	},
}

// HotAlloc flags the easy-to-miss allocation sources inside the
// designated hot functions: any fmt call, string concatenation, and
// string<->[]byte conversions — directly in the body, and (via the
// module call graph) in any non-hot helper the function reaches
// within hotAllocDepth calls. Helpers that are themselves designated
// hot are skipped: their own direct findings (and suppressions, for
// the memo-miss compute-through paths) govern them.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "designated hot functions must stay allocation-free: no fmt, string concatenation, or string<->[]byte conversion, directly or through reachable helpers",
	Run:  runHotAlloc,
}

// hotAllocDepth bounds the reachability query: an allocating helper
// more than this many calls away from a hot function is invisible.
const hotAllocDepth = 4

func runHotAlloc(pass *Pass) {
	funcs := hotFuncs[pass.PkgPath]
	if len(funcs) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcs[fd.Name.Name] {
				continue
			}
			checkHotBody(pass, fd.Name.Name, fd.Body, false)
			checkHotReach(pass, fd)
		}
	}
}

// isHotFunc reports whether fn is on any package's designated hot
// list.
func isHotFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return hotFuncs[fn.Pkg().Path()][fn.Name()]
}

// checkHotReach walks the call graph from one hot function and flags
// every call site whose callee chain reaches an allocation source in
// a non-hot helper. The direct body check already covers allocations
// in the hot function itself and in other hot functions, so those are
// pruned from the search.
func checkHotReach(pass *Pass, fd *ast.FuncDecl) {
	fn := FuncOf(pass.Info, fd)
	if fn == nil {
		return
	}
	allocFact := func(f *FuncFacts) *Fact { return f.Alloc }
	reported := map[token.Pos]bool{}
	for _, e := range pass.Graph.Edges(fn) {
		if reported[e.Site] || isHotFunc(e.Callee) {
			continue
		}
		path := pass.Graph.Search(e.Callee, hotAllocDepth-1, isHotFunc, allocFact)
		if path == nil {
			continue
		}
		reported[e.Site] = true
		pass.Reportf(e.Site,
			"call in hot function %s reaches an allocating helper (%s at %s); inline the hot case or move the allocation off this path",
			fd.Name.Name, chainString(e.Callee, path), pass.Fset.Position(path.Fact.Pos))
	}
}

// checkHotBody walks one hot function body. inConcat suppresses
// nested reports of the same string-concatenation chain so a+b+c is
// one finding, not two.
func checkHotBody(pass *Pass, fn string, n ast.Node, inConcat bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(pass.Info.Types[n].Type) {
			if !inConcat {
				pass.Reportf(n.Pos(),
					"string concatenation in hot function %s allocates; use a preallocated buffer or restructure the key", fn)
			}
			checkHotBody(pass, fn, n.X, true)
			checkHotBody(pass, fn, n.Y, true)
			return
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.Info.Types[n.Lhs[0]].Type) {
			pass.Reportf(n.Pos(),
				"string += in hot function %s allocates; use a preallocated buffer", fn)
		}
	case *ast.CallExpr:
		if fnObj := callee(pass.Info, n); fnObj != nil && fnObj.Pkg() != nil && fnObj.Pkg().Path() == "fmt" {
			pass.Reportf(n.Pos(),
				"fmt.%s in hot function %s allocates (formatting escapes its arguments); keep formatting off the hot path", fnObj.Name(), fn)
		} else if conv, from := conversionKind(pass.Info, n); conv != "" {
			pass.Reportf(n.Pos(),
				"%s(%s) conversion in hot function %s copies and allocates; keep one representation end to end", conv, from, fn)
		}
	}
	// Recurse generically over children. Concatenation chains were
	// handled above; everything else resets the inConcat guard.
	children(n, func(c ast.Node) {
		checkHotBody(pass, fn, c, false)
	})
}

// children invokes f once for each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// conversionKind classifies a call as a []byte(string) or
// string([]byte) conversion; it returns ("", "") otherwise.
func conversionKind(info *types.Info, call *ast.CallExpr) (to, from string) {
	if len(call.Args) != 1 {
		return "", ""
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", ""
	}
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return "", ""
	}
	switch {
	case isByteSlice(tv.Type) && isString(argT):
		return "[]byte", "string"
	case isString(tv.Type) && isByteSlice(argT):
		return "string", "[]byte"
	}
	return "", ""
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
