// Package analysis is vglint's analyzer framework: a dependency-free
// (stdlib go/parser + go/types only) harness that loads and
// type-checks this module, runs project-invariant rules over selected
// packages, and reports file/position-accurate diagnostics.
//
// The rules encode DESIGN.md's load-bearing invariants — seeded
// determinism, per-worker RNG streams, allocation-free hot paths, and
// command-ID context threading — so that the paper's reproduced
// numbers (Table 1 accuracy, the §IV-B spike signatures, Fig. 10 hold
// latencies) are machine-checked on every push instead of guarded by
// reviewer vigilance.
//
// A finding can be silenced at the line it occurs on (or the line
// directly below a standalone directive) with
//
//	//vglint:allow <rule> <reason>
//
// The reason is mandatory: an unexplained suppression is itself a
// finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"voiceguard/internal/parallel"
)

// Diagnostic is one rule finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // rule name used in reports and allow directives
	Doc  string // one-line description of the invariant it guards
	Run  func(*Pass)
}

// Pass is the per-package unit of work handed to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the import path the rule set keys its package gating
	// on. It normally equals Pkg.Path(); fixture tests override it to
	// masquerade as a gated package.
	PkgPath string

	// Graph is the module-wide call graph (extended with the package
	// itself for fixture packages), for interprocedural rules.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full vglint rule set in stable order.
func All() []*Analyzer {
	return []*Analyzer{RNGShare, SimClock, HotAlloc, TraceCtx, MetricLabel, MapOrder, LockHeld, GoroLeak}
}

// ByName returns the analyzer with the given rule name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// RuleStats counts one rule's outcomes over a scan: findings that
// survived suppression, and findings silenced by a //vglint:allow
// directive.
type RuleStats struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// Summary aggregates a scan: packages analyzed and per-rule outcome
// counts. Directive problems (rule "vglint") appear like any other
// rule's findings.
type Summary struct {
	Packages int                  `json:"packages_scanned"`
	Rules    map[string]RuleStats `json:"rules"`
}

// RunPackage runs the analyzers over one loaded package and returns
// the surviving diagnostics: findings not covered by a well-formed
// //vglint:allow directive, plus one diagnostic per malformed or
// unused directive. Results are ordered by file, then position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunPackageStats(pkg, analyzers)
	return diags
}

// RunPackageStats is RunPackage plus per-rule finding/suppression
// counts for the scan summary.
func RunPackageStats(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]RuleStats) {
	var raw []Diagnostic
	graph := graphFor(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			Graph:    graph,
			diags:    &raw,
		}
		a.Run(pass)
	}
	out, suppressed := applySuppressions(pkg, analyzers, raw)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
	stats := make(map[string]RuleStats, len(analyzers))
	for _, a := range analyzers {
		stats[a.Name] = RuleStats{}
	}
	for _, d := range out {
		s := stats[d.Rule]
		s.Findings++
		stats[d.Rule] = s
	}
	for rule, n := range suppressed {
		s := stats[rule]
		s.Suppressed += n
		stats[rule] = s
	}
	return out, stats
}

// RunModule runs the analyzers over the given packages, fanning the
// per-package work across the internal/parallel pool. Output is
// deterministic regardless of worker count: packages are analyzed
// against the one shared call graph (built serially up front) and
// results are flattened in the caller's package order.
func RunModule(mod *Module, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, Summary) {
	mod.Graph() // build once, serially, before the fan-out
	type result struct {
		diags []Diagnostic
		stats map[string]RuleStats
	}
	results := parallel.Map(len(pkgs), func(i int) result {
		diags, stats := RunPackageStats(pkgs[i], analyzers)
		return result{diags: diags, stats: stats}
	})
	summary := Summary{Packages: len(pkgs), Rules: make(map[string]RuleStats)}
	for _, a := range analyzers {
		summary.Rules[a.Name] = RuleStats{}
	}
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r.diags...)
		for rule, s := range r.stats {
			agg := summary.Rules[rule]
			agg.Findings += s.Findings
			agg.Suppressed += s.Suppressed
			summary.Rules[rule] = agg
		}
	}
	return diags, summary
}
