// Package scenario is the vglint fixture for the goroleak rule,
// compiled under the deterministic package path
// voiceguard/internal/scenario: a `go` statement needs a visible join
// path — a captured WaitGroup the spawner waits on, or a captured
// channel — and a `go` on a named function is always flagged.
package scenario

import "sync"

// tick is a named function target for the always-flagged case.
func tick(n int) int { return n + 1 }

// NamedGo spawns a named function: the join protocol, if any, is
// invisible at the spawn site.
func NamedGo() {
	go tick(1) // want `go statement on a named function in sim package voiceguard/internal/scenario`
}

// FireAndForget spawns a closure that touches no WaitGroup and no
// captured channel: nothing can wait for or stop it.
func FireAndForget(xs []int) {
	go func() { // want `goroutine in sim package voiceguard/internal/scenario has no join path`
		s := 0
		for _, x := range xs {
			s += x
		}
		_ = s
	}()
}

// JoinedByWaitGroup signals a captured WaitGroup the spawner waits
// on: the structured pattern, no finding.
func JoinedByWaitGroup(xs []int) int {
	var wg sync.WaitGroup
	s := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			s += x
		}
	}()
	wg.Wait()
	return s
}

// SignalsButNeverWaits calls Done on a WaitGroup nobody waits on:
// flagged with the WaitGroup's name.
func SignalsButNeverWaits(xs []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine signals WaitGroup "wg" but the spawning function never calls Wait`
		defer wg.Done()
		_ = len(xs)
	}()
}

// JoinedByChannel communicates over a captured channel: the spawner
// can receive the result, no finding.
func JoinedByChannel(xs []int) int {
	done := make(chan int, 1)
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		done <- s
	}()
	return <-done
}

// ClosedChannelJoin closes a captured channel as its completion
// signal: still a join path, no finding.
func ClosedChannelJoin(ready chan struct{}) {
	go func() {
		close(ready)
	}()
}

// InnerChannelIsNotAJoin makes its channel inside the goroutine: the
// spawner cannot see it, so it joins nothing.
func InnerChannelIsNotAJoin() {
	go func() { // want `has no join path`
		ch := make(chan int, 1)
		ch <- 1
		<-ch
	}()
}

// AllowedDetached keeps a deliberate detached goroutine under a
// directive.
func AllowedDetached(xs []int) {
	//vglint:allow goroleak fixture mirrors a process-lifetime collector owned by the runtime, not the sim
	go func() {
		_ = len(xs)
	}()
}
