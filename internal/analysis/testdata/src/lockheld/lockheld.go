// Package lockheld is the vglint fixture for the lockheld rule: a
// sync.Mutex/RWMutex held across a parallel fan-out, channel
// operation, select, WaitGroup.Wait, time.Sleep, or a helper that
// reaches one of those is flagged; lock-release before blocking, and
// locks scoped to branches or goroutine bodies, pass.
package lockheld

import (
	"sync"
	"time"

	"voiceguard/internal/parallel"
)

// Guarded is the shard shape the rule protects.
type Guarded struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items []int
}

// FanOutUnderLock holds the mutex across the worker-pool fan-out: the
// textbook violation.
func (g *Guarded) FanOutUnderLock(out []int) {
	g.mu.Lock()
	parallel.Do(len(g.items), func(i int) { // want `mutex "g\.mu" \(acquired at line \d+\) is held across a parallel\.Do fan-out`
		out[i] = g.items[i]
	})
	g.mu.Unlock()
}

// ReleaseThenFanOut snapshots under the lock and fans out after the
// release: the disciplined pattern, no finding.
func (g *Guarded) ReleaseThenFanOut(out []int) {
	g.mu.Lock()
	snapshot := append([]int(nil), g.items...)
	g.mu.Unlock()
	parallel.Do(len(snapshot), func(i int) {
		out[i] = snapshot[i]
	})
}

// DeferredUnlockAcrossReceive keeps the lock to function end via
// defer, so the receive happens with it held.
func (g *Guarded) DeferredUnlockAcrossReceive(ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want `mutex "g\.mu" .* is held across a channel receive`
}

// SendUnderLock sends with the lock held.
func (g *Guarded) SendUnderLock(ch chan int) {
	g.mu.Lock()
	ch <- len(g.items) // want `is held across a channel send`
	g.mu.Unlock()
}

// SelectUnderRLock holds a read lock across a select.
func (g *Guarded) SelectUnderRLock(a, b chan int) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	select { // want `mutex "g\.rw" .* is held across a select statement`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// WaitUnderLock holds the mutex across a WaitGroup join.
func (g *Guarded) WaitUnderLock(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want `is held across sync\.WaitGroup\.Wait`
	g.mu.Unlock()
}

// ClosureHoldsAcrossSleep locks inside a closure body: closures are
// independent lock scopes and are scanned too.
func (g *Guarded) ClosureHoldsAcrossSleep(d time.Duration) func() {
	return func() {
		g.mu.Lock()
		time.Sleep(d) // want `is held across time\.Sleep`
		g.mu.Unlock()
	}
}

// settle hides the blocking call one level down; the call graph still
// finds it.
func settle(d time.Duration) { time.Sleep(d) }

// HelperBlocksUnderLock reaches time.Sleep through a helper.
func (g *Guarded) HelperBlocksUnderLock(d time.Duration) {
	g.mu.Lock()
	settle(d) // want `is held across a call that blocks \(settle`
	g.mu.Unlock()
}

// BranchScopedLock acquires and releases entirely inside a branch:
// the fall-through channel send runs unlocked, no finding.
func (g *Guarded) BranchScopedLock(cond bool, ch chan int) {
	if cond {
		g.mu.Lock()
		g.items = g.items[:0]
		g.mu.Unlock()
	}
	ch <- len(g.items)
}

// GoroutineDoesNotHoldCallerLock spawns under the lock: the goroutine
// body runs without it, so neither scope is a violation.
func (g *Guarded) GoroutineDoesNotHoldCallerLock(ch chan int) {
	g.mu.Lock()
	go func() {
		ch <- 1
	}()
	g.mu.Unlock()
}

// IfInitReceiveUnderLock blocks inside an if init statement while the
// lock is held: init statements run on the enclosing path.
func (g *Guarded) IfInitReceiveUnderLock(ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v, ok := <-ch; ok { // want `mutex "g\.mu" .* is held across a channel receive`
		return v
	}
	return 0
}

// ForPostReceiveUnderLock blocks in the for post statement, which
// runs every iteration with the lock still held.
func (g *Guarded) ForPostReceiveUnderLock(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < 3; i = <-ch { // want `is held across a channel receive`
		g.items = append(g.items, i)
	}
}

// spawnDrain only spawns the draining goroutine; the receive runs on
// the spawned goroutine and never blocks the caller.
func spawnDrain(ch chan int) {
	go func() { <-ch }()
}

// SpawnHelperUnderLock holds the lock across a helper that merely
// spawns a goroutine doing channel ops: the helper itself never
// blocks, so no finding.
func (g *Guarded) SpawnHelperUnderLock(ch chan int) {
	g.mu.Lock()
	spawnDrain(ch)
	g.mu.Unlock()
}

// AllowedHold keeps a deliberate hold under a directive.
func (g *Guarded) AllowedHold(ch chan int) {
	g.mu.Lock()
	//vglint:allow lockheld fixture mirrors a bounded handoff on a buffered channel that never blocks
	ch <- len(g.items)
	g.mu.Unlock()
}
