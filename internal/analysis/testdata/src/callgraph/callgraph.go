// Package callgraph is the fixture for the interprocedural layer
// itself rather than any one rule: goroutine-spawned work must not
// contribute Block facts to the spawner, spawn edges are Go-marked so
// SearchSync refuses them, and interface resolution collapses the
// T/*T candidate pair to one edge per concrete method.
package callgraph

// Doer is implemented by Val with a value receiver, so both Val and
// *Val satisfy it; resolution must still record Val.Do once.
type Doer interface{ Do() int }

// Val is the value-receiver implementation.
type Val struct{ n int }

// Do is in both Val's and *Val's method sets.
func (v Val) Do() int { return v.n }

// Dispatch calls through the interface.
func Dispatch(d Doer) int { return d.Do() }

// spawnDrain only spawns the draining goroutine: the channel receive
// runs on the spawned goroutine, so spawnDrain itself never blocks
// and must carry no Block fact.
func spawnDrain(ch chan int) {
	go func() { <-ch }()
}

// drainWorker blocks on its own goroutine when spawned below.
func drainWorker(ch chan int) { <-ch }

// spawnWorker hands drainWorker to a goroutine: the edge is Go-marked
// and invisible to SearchSync, while the full Search still traverses
// it.
func spawnWorker(ch chan int) { go drainWorker(ch) }

// use keeps the unexported fixtures referenced.
var _ = []any{spawnDrain, spawnWorker}
