// Package metriclabel is the vglint fixture for the metriclabel
// rule: metric family names handed to registration calls must be
// package-level constants, and the closed label dimensions of a
// metrics.Labels literal (Stage, Verdict) must be constant
// expressions. Home/Speaker/Profile are the dynamic dimensions and
// stay unconstrained.
package metriclabel

import "voiceguard/internal/metrics"

// The legal pattern: family names declared once, at package scope.
const (
	metricGood    = "fixture_events_total"
	metricGoodLat = "fixture_latency_seconds"
	stageGood     = "decide"
	verdictGood   = "allow"
)

var dynamicName = "fixture_dynamic_total"

// Package-level const names are the legal pattern, for both the
// Default-registry helpers and Registry methods.
var (
	okCounter = metrics.NewCounter(metricGood)
	okVec     = metrics.NewHistogramVec(metricGoodLat)
)

func okRegistry(reg *metrics.Registry) {
	_ = reg.Gauge(metricGood)
	_ = reg.HistogramVec(metricGoodLat)
}

// String literals are constant but not named: the family is not
// greppable from the const block — flagged.
func literalName() {
	_ = metrics.NewGauge("fixture_inline_total") // want `metric name passed to metrics\.NewGauge must be a package-level constant`
}

// Function-local consts do not pin the schema at package scope —
// flagged.
func localConst() {
	const local = "fixture_local_total"
	_ = metrics.NewHistogram(local) // want `metric name passed to metrics\.NewHistogram must be a package-level constant`
}

// Variables make the family name a runtime value — flagged, on both
// the helper and the Registry method form.
func variableName(reg *metrics.Registry) {
	_ = metrics.NewCounterVec(dynamicName) // want `metric name passed to metrics\.NewCounterVec must be a package-level constant`
	_ = reg.Counter(dynamicName)           // want `metric name passed to metrics\.Counter must be a package-level constant`
}

// Constant Stage/Verdict values are the legal pattern; the dynamic
// dimensions may come from anywhere.
func okLabels(home, profile string) metrics.Labels {
	return metrics.Labels{Home: home, Stage: stageGood, Verdict: verdictGood, Profile: profile}
}

// stageOf stands in for any runtime-computed stage value.
func stageOf(s string) string { return s }

// Dynamic Stage/Verdict values are unbounded cardinality — flagged
// per field.
func dynamicLabels(v string) {
	okVec.With(metrics.Labels{
		Stage:   stageOf("x"), // want `Labels\.Stage must be a constant expression`
		Verdict: v,            // want `Labels\.Verdict must be a constant expression`
	}).Observe(0)
}

// Positional literals bind fields by declaration order; the Stage
// slot (third) is checked there too.
func positionalLabels(home string) metrics.Labels {
	return metrics.Labels{home, "echo", stageOf("y"), verdictGood, "none"} // want `Labels\.Stage must be a constant expression`
}

// A deliberate dynamic verdict with its reason on record.
func allowedDynamic(v string) {
	_ = okCounter
	lv := metrics.Labels{Verdict: v} //vglint:allow metriclabel vetted pass-through of an upstream verdict enum in this fixture
	okVec.With(lv).Observe(0)
}
