// Package obs is the vglint fixture for the maporder rule, compiled
// under the deterministic package path voiceguard/internal/obs: a
// `range` over a map is flagged when iteration order can escape —
// into an order-keeping slice, an RNG draw sequence, a metric
// registration, a channel, or a float accumulator — and passes when
// the body is order-insensitive or the result is totally sorted.
package obs

import (
	"sort"

	"voiceguard/internal/metrics"
	"voiceguard/internal/rng"
)

// AppendUnsorted leaks iteration order straight into the returned
// slice.
func AppendUnsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `map iteration order escapes in deterministic package voiceguard/internal/obs: appended elements reach "out" in iteration order with no total sort afterwards`
		out = append(out, k)
	}
	return out
}

// AppendThenSortKeys launders the order through a natural-order sort:
// no finding.
func AppendThenSortKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AppendThenComparatorSort sorts with a comparator, which cannot
// prove a total order (equal-compare elements keep insertion order):
// still a finding.
func AppendThenComparatorSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `comparator-based sort after the loop cannot prove a total order`
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

// DrawPerKey consumes the seeded stream in iteration order: the draw
// sequence — part of the replay contract — becomes a map-order race.
func DrawPerKey(m map[string]int, src *rng.Source) {
	for range m { // want `the body draws from an rng stream`
		_ = src.Normal(0, 1)
	}
}

// jitter hides the draw one call away; the call graph still sees it.
func jitter(src *rng.Source) float64 { return src.Normal(0, 1) }

// DrawViaHelper reaches the RNG through a helper: flagged with the
// witness chain.
func DrawViaHelper(m map[string]int, src *rng.Source) {
	for range m { // want `calls jitter, which reaches an RNG draw`
		_ = jitter(src)
	}
}

// RegisterPerKey fixes metric series identity in iteration order.
func RegisterPerKey(m map[string]string) {
	for _, name := range m { // want `registers metric families`
		metrics.NewCounter(name)
	}
}

// SendPerKey makes receive order follow iteration order.
func SendPerKey(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

// FloatAccumulate sums floats in iteration order: float addition does
// not commute under rounding.
func FloatAccumulate(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates into a float`
		total += v
	}
	return total
}

// CountKeys is order-insensitive: integer counting commutes.
func CountKeys(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// BucketPerKey appends into another map per key: order cannot cross
// keys, so no finding.
func BucketPerKey(m map[string]int, out map[string][]int) {
	for k, v := range m {
		out[k] = append(out[k], v)
	}
}

// LocalPerIteration builds a fresh slice each iteration: order never
// crosses keys.
func LocalPerIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		pair := make([]int, 0, 2)
		pair = append(pair, len(vs), cap(vs))
		n += len(pair)
	}
	return n
}

// Allowed keeps a deliberate escape under a directive: the overflow
// diagnostics dump is explicitly unordered.
func Allowed(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//vglint:allow maporder fixture mirrors a diagnostics dump whose order is documented as unspecified
	for k := range m {
		out = append(out, k)
	}
	return out
}
