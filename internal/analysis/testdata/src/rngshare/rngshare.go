// Package rngshare is the vglint fixture for the rngshare rule: a
// seeded stream captured by a worker must be flagged, while deriving
// per-worker streams from a shared root via Split/SplitN is legal.
package rngshare

import (
	"voiceguard/internal/ble"
	"voiceguard/internal/floorplan"
	"voiceguard/internal/parallel"
	"voiceguard/internal/rng"
	"voiceguard/internal/trafficgen"
)

// sharedMapDraw consumes one stream from every Map worker — flagged.
func sharedMapDraw(seed int64) []float64 {
	src := rng.New(seed)
	return parallel.Map(4, func(i int) float64 {
		return src.Float64() // want `"src" \(type \*rng\.Source\) is captured by a parallel.Map closure`
	})
}

// sharedMapErrDraw does the same through MapErr — flagged.
func sharedMapErrDraw(seed int64) ([]int, error) {
	src := rng.New(seed)
	return parallel.MapErr(4, func(i int) (int, error) {
		return src.IntN(10), nil // want `"src" \(type \*rng\.Source\) is captured by a parallel.MapErr closure`
	})
}

// sharedDoDraw consumes a stream from a Do worker — flagged.
func sharedDoDraw(seed int64, out []float64) {
	src := rng.New(seed)
	parallel.Do(len(out), func(i int) {
		out[i] = src.Float64() // want `"src" \(type \*rng\.Source\) is captured by a parallel.Do closure`
	})
}

// sharedGoDraw consumes a captured stream from a goroutine — flagged.
func sharedGoDraw(seed int64) {
	src := rng.New(seed)
	done := make(chan struct{})
	go func() {
		_ = src.Float64() // want `"src" \(type \*rng\.Source\) is captured by a go statement`
		close(done)
	}()
	<-done
}

// sharedScanner captures a BLE scanner (it owns a stream) — flagged.
func sharedScanner(sc *ble.Scanner, adv ble.Advertiser, positions []floorplan.Position) []ble.Reading {
	return parallel.Map(len(positions), func(i int) ble.Reading {
		return sc.Measure(adv, positions[i]) // want `"sc" \(type \*ble\.Scanner\) is captured by a parallel.Map closure`
	})
}

// sharedGenerator captures a traffic generator — flagged.
func sharedGenerator(echo *trafficgen.Echo) {
	go func() {
		_ = echo // want `"echo" \(type \*trafficgen\.Echo\) is captured by a go statement`
	}()
}

// perWorkerSplit derives each worker's stream from the shared root —
// the legal pattern, not flagged.
func perWorkerSplit(seed int64) []float64 {
	root := rng.New(seed)
	return parallel.Map(4, func(i int) float64 {
		return root.SplitN("trial", i).Float64()
	})
}

// perWorkerSplitLabel uses Split with a per-worker label — legal.
func perWorkerSplitLabel(seed int64, labels []string) []float64 {
	root := rng.New(seed)
	return parallel.Map(len(labels), func(i int) float64 {
		return root.Split(labels[i]).Float64()
	})
}

// perWorkerNew builds the stream inside the worker — legal.
func perWorkerNew(seed int64) []float64 {
	return parallel.Map(4, func(i int) float64 {
		return rng.New(seed + int64(i)).Float64()
	})
}

// serialUseOutsideFanOut draws after the fan-out returns — legal.
func serialUseOutsideFanOut(seed int64) float64 {
	src := rng.New(seed)
	_ = parallel.Map(4, func(i int) int { return i })
	return src.Float64()
}

// suppressed documents a deliberate single-worker share with an
// allow directive.
func suppressed(seed int64) []float64 {
	src := rng.New(seed)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	return parallel.Map(4, func(i int) float64 {
		//vglint:allow rngshare the pool is pinned to one worker two lines up, so the shared draw order is still deterministic
		return src.Float64()
	})
}
