// Package radio is the vglint fixture for the hotalloc rule,
// compiled under the hot-path package path voiceguard/internal/radio:
// formatting, string concatenation, and string<->[]byte conversions
// are flagged inside the designated hot functions and legal anywhere
// else.
package radio

import (
	"fmt"
	"strconv"
)

// Model mirrors the shape of radio.Model so the designated method
// names resolve.
type Model struct{}

// Sample is a designated hot function: formatting is flagged.
func (m *Model) Sample(a, b float64) string {
	return fmt.Sprintf("%f|%f", a, b) // want `fmt\.Sprintf in hot function Sample`
}

// Mean is a designated hot function: concatenation and conversions
// are flagged; a chained a+b+c concatenation is one finding.
func (m *Model) Mean(key, suffix string) []byte {
	joined := key + ":" + suffix // want `string concatenation in hot function Mean`
	return []byte(joined)        // want `\[\]byte\(string\) conversion in hot function Mean`
}

// PathRSSI is a designated hot function: the reverse conversion is
// flagged too.
func (m *Model) PathRSSI(raw []byte) string {
	return string(raw) // want `string\(\[\]byte\) conversion in hot function PathRSSI`
}

// shadowAt is a designated hot function: += on strings is flagged.
func (m *Model) shadowAt(parts []string) string {
	var out string
	for _, p := range parts {
		out += p // want `string \+= in hot function shadowAt`
	}
	return out
}

// AverageAt keeps a deliberate formatting call under an allow
// directive.
func (m *Model) AverageAt(x float64) string {
	//vglint:allow hotalloc fixture keeps the readable formatting; this mirrors radio.shadowAtUncached's annotated miss path
	return fmt.Sprint(x)
}

// integerMath is hot-function-free arithmetic: no findings even in a
// designated function body shape.
func (m *Model) integerMath(a, b int) int {
	return a*b + b // not a string concatenation: + on ints is fine anywhere
}

// notHot is not a designated hot function: the same constructs are
// legal here.
func notHot(a, b string) string {
	buf := []byte(a + b)
	return fmt.Sprintf("%s/%s", string(buf), strconv.Itoa(len(buf)))
}
