// reach.go exercises the interprocedural half of hotalloc: a hot
// function is also forbidden from *reaching* an allocating helper
// through the call graph, depth-bounded. Helpers that are themselves
// designated hot are skipped — their own direct findings (and
// suppressions) govern them.
package radio

import "fmt"

// MeanBatch reaches fmt two calls down: the call site is flagged with
// the witness chain.
func (m *Model) MeanBatch(keys []string) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, buildKey(k)) // want `call in hot function MeanBatch reaches an allocating helper \(buildKey -> formatKey`
	}
	return out
}

func buildKey(k string) string  { return formatKey(k) }
func formatKey(k string) string { return fmt.Sprintf("key=%s", k) }

// SampleBatch reaches only allocation-free arithmetic: no finding.
func (m *Model) SampleBatch(n int) int {
	return pureSum(n)
}

func pureSum(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// SampleRepeat calls the hot Sample, whose own direct findings govern
// its body: the call site is not re-flagged.
func (m *Model) SampleRepeat(a, b float64) string {
	return m.Sample(a, b)
}

// SampleFromMeans reaches an allocator five calls down — beyond the
// search horizon, so the under-approximation stays quiet.
func (m *Model) SampleFromMeans(n int) int {
	return deep1(n)
}

func deep1(n int) int { return deep2(n) }
func deep2(n int) int { return deep3(n) }
func deep3(n int) int { return deep4(n) }
func deep4(n int) int { return deep5(n) }
func deep5(n int) int { return len(fmt.Sprint(n)) }

// AverageAtBatch keeps a deliberate reach under a directive: the
// batch formatter is the cold reporting path.
func (m *Model) AverageAtBatch(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		//vglint:allow hotalloc batch rendering is the cold reporting path; the per-sample hot path never calls this
		out[i] = renderValue(x)
	}
	return out
}

func renderValue(x float64) string { return fmt.Sprint(x) }
