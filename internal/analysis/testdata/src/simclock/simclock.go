// Package scenario is the vglint fixture for the simclock rule,
// compiled under the deterministic simulation package path
// voiceguard/internal/scenario: wall-clock reads and waits are
// flagged; reading an injected simtime.Clock is the legal pattern.
package scenario

import (
	"time"

	"voiceguard/internal/simtime"
)

// wallRead reads the wall clock on a simulated path — flagged.
func wallRead() time.Time {
	return time.Now() // want `time\.Now in deterministic simulation package voiceguard/internal/scenario`
}

// wallWaits block on the wall clock — flagged per call.
func wallWaits(d time.Duration) {
	time.Sleep(d)         // want `time\.Sleep in deterministic simulation package`
	<-time.After(d)       // want `time\.After in deterministic simulation package`
	t := time.NewTimer(d) // want `time\.NewTimer in deterministic simulation package`
	t.Stop()
}

// wallElapsed measures with the wall clock — flagged.
func wallElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic simulation package`
}

// clockRead takes the injected clock — the legal pattern.
func clockRead(clock simtime.Clock) time.Time {
	return clock.Now()
}

// clockElapsed measures against the injected clock — legal.
func clockElapsed(clock simtime.Clock) time.Duration {
	start := clock.Now()
	return clock.Now().Sub(start)
}

// simScheduling drives a simulated clock — legal: *simtime.Sim is
// exactly how deterministic time is supposed to move.
func simScheduling(start time.Time) time.Time {
	sim := simtime.NewSim(start)
	sim.After(3*time.Second, func() {})
	sim.Run()
	return sim.Now()
}

// deliberateWallClock documents a measurement that genuinely wants
// wall time, with an allow directive on the line above.
func deliberateWallClock() time.Time {
	//vglint:allow simclock this fixture line measures real elapsed time on sockets, mirroring scenario/fig4.go
	return time.Now()
}

// trailingDirective suppresses on the same line.
func trailingDirective(d time.Duration) {
	time.Sleep(d) //vglint:allow simclock real-socket wait in this fixture
}
