// Package decision is the vglint fixture for the tracectx rule,
// compiled under the pipeline package path
// voiceguard/internal/decision: minting a fresh context drops the
// command-ID thread; deriving from the caller's ctx is the legal
// pattern.
package decision

import (
	"context"
	"time"
)

// freshBackground mints a root context mid-pipeline — flagged.
func freshBackground() context.Context {
	return context.Background() // want `context\.Background in pipeline package voiceguard/internal/decision`
}

// freshTODO is the same smell in TODO form — flagged.
func freshTODO() context.Context {
	return context.TODO() // want `context\.TODO in pipeline package`
}

// plumbed derives from the caller's context — legal.
func plumbed(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second)
}

type ctxKey struct{}

// annotated derives from the caller too — legal, no directive needed.
func annotated(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// detachedJob documents a deliberately detached lifetime with an
// allow directive.
func detachedJob() context.Context {
	//vglint:allow tracectx detached janitor owns its lifetime; no command is in flight when it runs
	return context.Background()
}
