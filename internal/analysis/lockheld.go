package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags a sync.Mutex or sync.RWMutex held across a blocking
// operation: a parallel.Map/MapErr/Do fan-out, a channel
// send/receive/select, sync.WaitGroup.Wait, time.Sleep, or a call
// that reaches any of those through the call graph. This is the fleet
// shard discipline ("the mutex guards the map and order slice only —
// never held while a tenant runs") promoted from comment to machine
// check: a lock held across a fan-out serializes the worker pool at
// best and deadlocks it at worst.
//
// The tracker is intra-procedural and statement-ordered: Lock/RLock
// adds the lock, Unlock/RUnlock removes it, a deferred Unlock keeps
// it held to the end of the function. Branch bodies are analyzed with
// a copy of the held set, so a conditional early unlock never leaks
// state into the fall-through path. Blocking calls hiding behind
// helpers are found through the module call graph, depth-bounded.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "mutexes must not be held across fan-outs, channel ops, or other blocking calls",
	Run:  runLockHeld,
}

// lockHeldSearchDepth bounds the transitive-blocking query: a helper
// chain deeper than this is invisible (under-approximation by
// design).
const lockHeldSearchDepth = 3

func runLockHeld(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	// Every function body — declarations and closures alike — is its
	// own lock scope. Closures matter most: worker-pool bodies and
	// goroutine callbacks are exactly where a lock and a channel op
	// meet. The statement scanner never descends into a nested
	// FuncLit, so each body here is analyzed exactly once.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanLockedStmts(pass, n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				scanLockedStmts(pass, n.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// scanLockedStmts walks one statement list in order, maintaining the
// set of held locks (key: rendered receiver expression -> acquire
// position). Nested control flow gets a copy of the set: acquisition
// or release inside a branch is not assumed on the fall-through path.
func scanLockedStmts(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, acquire, ok := lockCall(pass, s.X); ok {
				if acquire {
					held[key] = s.Pos()
				} else {
					delete(held, key)
				}
				continue
			}
			checkBlocking(pass, s, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held for the rest of the
			// function — exactly the case the rule exists for. Any other
			// deferred work runs after the body and is not scanned.
			continue
		case *ast.GoStmt:
			// The spawned goroutine does not hold the caller's locks.
			continue
		case *ast.BlockStmt:
			scanLockedStmts(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			// The init statement runs unconditionally before the
			// condition, so its lock effects (and blocking ops, as in
			// `if v := <-ch; ok`) belong to the fall-through path.
			scanInit(pass, s.Init, held)
			checkBlocking(pass, s.Cond, held)
			scanLockedStmts(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanLockedStmts(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanInit(pass, s.Init, held)
			if s.Cond != nil {
				checkBlocking(pass, s.Cond, held)
			}
			if s.Post != nil {
				// Post runs per iteration; like the body, it gets a copy
				// so its effects never leak to the fall-through path.
				scanLockedStmts(pass, []ast.Stmt{s.Post}, copyHeld(held))
			}
			scanLockedStmts(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			if len(held) > 0 {
				if t := pass.Info.Types[s.X].Type; t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						reportHeld(pass, s.Pos(), held, "ranging over a channel")
						continue
					}
				}
			}
			checkBlocking(pass, s.X, held)
			scanLockedStmts(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			scanInit(pass, s.Init, held)
			checkBlocking(pass, s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			scanInit(pass, s.Init, held)
			checkBlocking(pass, s.Assign, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 {
				reportHeld(pass, s.Pos(), held, "a select statement")
			}
		case *ast.LabeledStmt:
			scanLockedStmts(pass, []ast.Stmt{s.Stmt}, held)
		default:
			checkBlocking(pass, stmt, held)
		}
	}
}

// scanInit feeds an if/for/switch init statement through the normal
// statement scanner with the caller's own held set (no copy): the init
// executes on the path that reaches the enclosing statement, so a
// Lock/Unlock there is held (or released) on the fall-through too.
func scanInit(pass *Pass, init ast.Stmt, held map[string]token.Pos) {
	if init != nil {
		scanLockedStmts(pass, []ast.Stmt{init}, held)
	}
}

// checkBlocking reports the first blocking operation inside node n
// while any lock is held. Function literals and go statements are not
// descended into: their bodies run elsewhere (or later) and do not
// hold these locks at this point.
func checkBlocking(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	done := false
	ast.Inspect(n, func(c ast.Node) bool {
		if done {
			return false
		}
		switch c := c.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			reportHeld(pass, c.Pos(), held, "a channel send")
			done = true
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				reportHeld(pass, c.Pos(), held, "a channel receive")
				done = true
			}
		case *ast.SelectStmt:
			reportHeld(pass, c.Pos(), held, "a select statement")
			done = true
		case *ast.CallExpr:
			if what := blockingCall(pass, c); what != "" {
				reportHeld(pass, c.Pos(), held, what)
				done = true
			}
		}
		return !done
	})
}

// blockingCall classifies a call as blocking: the direct primitives,
// or a module function that reaches one through the call graph.
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	fn := callee(pass.Info, call)
	if fn == nil {
		return ""
	}
	if p := fn.Pkg(); p != nil {
		switch p.Path() {
		case parallelPkg:
			switch fn.Name() {
			case "Map", "MapErr", "Do":
				return "a parallel." + fn.Name() + " fan-out"
			}
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep"
			}
		case "sync":
			if fn.Name() == "Wait" && recvNamed(fn, "sync", "WaitGroup") {
				return "sync.WaitGroup.Wait"
			}
			return ""
		}
	}
	// SearchSync: a helper that merely spawns a goroutine doing channel
	// ops does not block the caller, so go-marked edges are not
	// traversed.
	if path := pass.Graph.SearchSync(fn, lockHeldSearchDepth, nil, func(f *FuncFacts) *Fact { return f.Block }); path != nil {
		return "a call that blocks (" + chainString(fn, path) + ")"
	}
	return ""
}

// reportHeld emits one finding per lock held at a blocking site.
func reportHeld(pass *Pass, pos token.Pos, held map[string]token.Pos, what string) {
	for _, key := range sortedKeys(held) {
		pass.Reportf(pos,
			"mutex %q (acquired at line %d) is held across %s; release it first — shard discipline forbids holding a lock over a blocking operation",
			key, pass.Fset.Position(held[key]).Line, what)
	}
}

// lockCall matches x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() on a
// sync.Mutex or sync.RWMutex (embedded ones included), returning the
// rendered lock expression and whether the call acquires.
func lockCall(pass *Pass, e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := callee(pass.Info, call)
	if fn == nil || !(recvNamed(fn, "sync", "Mutex") || recvNamed(fn, "sync", "RWMutex")) {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// copyHeld clones the held-lock set for a branch body.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// sortedKeys returns the held-lock keys in sorted order so reports
// are deterministic.
func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
