package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the light dataflow helper behind maporder: given a
// `range` over a map, decide whether the iteration order can escape
// into something observable — a slice that keeps its element order,
// an RNG stream whose draw order is part of the seeded contract, a
// metric registration whose order fixes series identity, a channel,
// or a floating-point accumulator (float addition does not commute
// under rounding). The analysis is deliberately shallow and
// syntactic-plus-types: it under-approximates escape routes rather
// than modeling aliasing, and the //vglint:allow directive covers the
// sites it cannot see through.

// orderSink describes one way iteration order escapes a map range.
type orderSink struct {
	pos  token.Pos
	what string
}

// findOrderSink scans one map-range body (fd is the enclosing
// declaration, used to look for post-loop sorts) and returns the
// first escape route found, or nil if the body is order-insensitive.
func findOrderSink(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) *orderSink {
	var sink *orderSink
	found := func(pos token.Pos, what string) {
		if sink == nil {
			sink = &orderSink{pos: pos, what: what}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found(n.Pos(), "the body sends on a channel, so receive order follows iteration order")
		case *ast.AssignStmt:
			if s := assignSink(pass, fd, rs, n); s != nil {
				found(s.pos, s.what)
			}
		case *ast.CallExpr:
			if s := callSink(pass, n); s != nil {
				found(s.pos, s.what)
			}
		}
		return true
	})
	return sink
}

// assignSink classifies one assignment inside the loop body: an
// append whose target keeps element order, or a floating-point
// accumulation.
func assignSink(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) *orderSink {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 || !isFloat(pass.Info.Types[as.Lhs[0]].Type) {
			return nil
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && declaredWithin(pass.Info, id, rs) {
			return nil
		}
		return &orderSink{pos: as.Pos(),
			what: "the body accumulates into a float (float addition is not associative, so the sum depends on iteration order)"}
	case token.ASSIGN, token.DEFINE:
	default:
		return nil
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass.Info, call) {
		return nil
	}
	switch lhs := ast.Unparen(as.Lhs[0]).(type) {
	case *ast.Ident:
		obj := identObj(pass.Info, lhs)
		if obj == nil || declaredWithin(pass.Info, lhs, rs) {
			return nil // per-iteration slice: order cannot cross keys
		}
		if pos, comparator := sortAfter(pass, fd, rs, obj); pos.IsValid() {
			if !comparator {
				return nil // totally sorted after the loop: order is laundered
			}
			return &orderSink{pos: as.Pos(),
				what: "appended elements reach " + quoted(lhs.Name) + ", and the comparator-based sort after the loop cannot prove a total order"}
		}
		return &orderSink{pos: as.Pos(),
			what: "appended elements reach " + quoted(lhs.Name) + " in iteration order with no total sort afterwards"}
	case *ast.IndexExpr:
		// m[k] = append(m[k], v): per-key bucketing into another map
		// is order-independent.
		if t := pass.Info.Types[lhs.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				return nil
			}
		}
		return &orderSink{pos: as.Pos(),
			what: "appended elements reach an indexed slice in iteration order"}
	default:
		return &orderSink{pos: as.Pos(),
			what: "appended elements escape through " + types.ExprString(as.Lhs[0]) + " in iteration order"}
	}
}

// callSink classifies one call inside the loop body: a direct or
// transitive RNG draw, or a metric registration. Transitive effects
// are found through the call graph, depth-bounded, so a helper two
// calls away still counts.
func callSink(pass *Pass, call *ast.CallExpr) *orderSink {
	fn := callee(pass.Info, call)
	if fn == nil {
		return nil
	}
	if isRNGDraw(fn) {
		return &orderSink{pos: call.Pos(),
			what: "the body draws from an rng stream, so the seeded draw sequence follows iteration order"}
	}
	if p := fn.Pkg(); p != nil && (p.Path() == "math/rand" || p.Path() == "math/rand/v2") {
		return &orderSink{pos: call.Pos(), what: "the body draws from math/rand in iteration order"}
	}
	if p := fn.Pkg(); p != nil && p.Path() == metricsPkgPath && metricRegistrars[fn.Name()] {
		return &orderSink{pos: call.Pos(),
			what: "the body registers metric families, so series identity depends on iteration order"}
	}
	const sinkDepth = 3
	if path := pass.Graph.Search(fn, sinkDepth, nil, func(f *FuncFacts) *Fact { return f.RNGDraw }); path != nil {
		return &orderSink{pos: call.Pos(),
			what: "the body calls " + fn.Name() + ", which reaches an RNG draw (" + chainString(fn, path) + ")"}
	}
	if path := pass.Graph.Search(fn, sinkDepth, nil, func(f *FuncFacts) *Fact { return f.Metric }); path != nil {
		return &orderSink{pos: call.Pos(),
			what: "the body calls " + fn.Name() + ", which reaches a metric registration (" + chainString(fn, path) + ")"}
	}
	return nil
}

// sortAfter looks for a sort of obj positioned after the loop in the
// enclosing function. It returns the sort's position and whether it
// was a comparator-based sort (sort.Slice and friends, which cannot
// prove a total order) as opposed to a natural-order sort
// (sort.Strings/Ints/Float64s, slices.Sort — total by construction).
func sortAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) (pos token.Pos, comparator bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		fn := callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		var comp bool
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s":
				comp = false
			case "Slice", "SliceStable", "Sort", "Stable":
				comp = true
			default:
				return true
			}
		case "slices":
			switch fn.Name() {
			case "Sort":
				comp = false
			case "SortFunc", "SortStableFunc":
				comp = true
			default:
				return true
			}
		default:
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && identObj(pass.Info, id) == obj {
			if !pos.IsValid() || !comp {
				pos, comparator = call.Pos(), comp
			}
		}
		return true
	})
	return pos, comparator
}

// chainString renders a witness path "a -> b -> c: what" for
// diagnostics.
func chainString(from *types.Func, p *Path) string {
	s := from.Name()
	for _, fn := range p.Chain {
		s += " -> " + fn.Name()
	}
	return s + ": " + p.Fact.What
}

// identObj resolves an identifier to its object, whether this
// occurrence uses or defines it.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether id's object is declared inside node
// n's extent.
func declaredWithin(info *types.Info, id *ast.Ident, n ast.Node) bool {
	obj := identObj(info, id)
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isFloat reports whether t's underlying type is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// quoted wraps a name in double quotes for diagnostics.
func quoted(s string) string { return `"` + s + `"` }
