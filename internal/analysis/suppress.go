package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix introduces a suppression directive. The full form is
//
//	//vglint:allow <rule> <reason>
//
// placed on the offending line or on its own line directly above.
const allowPrefix = "//vglint:allow"

// directiveRule is the rule name used for diagnostics about the
// directives themselves (malformed or suppressing nothing). These are
// not suppressible: a broken suppression must be fixed, not silenced.
const directiveRule = "vglint"

// directive is one parsed //vglint:allow comment.
type directive struct {
	rule   string
	reason string
	pos    token.Position
	broken bool // malformed: missing rule/reason or unknown rule
	used   bool
}

// parseDirectives extracts every vglint directive of a package,
// indexed by file name and comment line.
func parseDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				d := &directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) >= 1 {
					d.rule = fields[0]
				}
				if len(fields) >= 2 {
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.rule == "" || d.reason == "" {
					d.broken = true
				} else if _, ok := ByName(d.rule); !ok {
					d.broken = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions filters raw findings through the package's allow
// directives. A well-formed directive on a finding's line, or on the
// line directly above it, suppresses findings of its rule. Malformed
// directives, and directives for an executed rule that suppressed
// nothing, are reported as findings themselves so stale annotations
// cannot accumulate. The second result counts the silenced findings
// per rule, for the scan summary.
func applySuppressions(pkg *Package, analyzers []*Analyzer, raw []Diagnostic) ([]Diagnostic, map[string]int) {
	directives := parseDirectives(pkg)
	byLine := make(map[string][]*directive, len(directives))
	key := func(file string, line int) string { return file + "\x00" + strconv.Itoa(line) }
	for _, d := range directives {
		if d.broken {
			continue
		}
		byLine[key(d.pos.Filename, d.pos.Line)] = append(byLine[key(d.pos.Filename, d.pos.Line)], d)
	}

	var out []Diagnostic
	silenced := make(map[string]int)
	for _, diag := range raw {
		suppressed := false
		for _, line := range []int{diag.Pos.Line, diag.Pos.Line - 1} {
			for _, d := range byLine[key(diag.Pos.Filename, line)] {
				if d.rule == diag.Rule {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, diag)
		} else {
			silenced[diag.Rule]++
		}
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, d := range directives {
		switch {
		case d.broken:
			out = append(out, Diagnostic{
				Pos:  d.pos,
				Rule: directiveRule,
				Message: "malformed directive: want //vglint:allow <rule> <reason> " +
					"with a known rule and a non-empty reason",
			})
		case ran[d.rule] && !d.used:
			out = append(out, Diagnostic{
				Pos:     d.pos,
				Rule:    directiveRule,
				Message: "//vglint:allow " + d.rule + " suppresses nothing; remove the stale directive",
			})
		}
	}
	return out, silenced
}
