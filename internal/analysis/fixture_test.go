package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness: each testdata/src/<rule> directory is compiled
// against the real module (so fixtures import the real rng, parallel,
// ble, and simtime packages) under a masqueraded import path, the
// rule runs, and the diagnostics must line up exactly with the
// fixture's `// want `regexp`` comments.

var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

// testModule loads the enclosing module once per test binary.
func testModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() {
		var root string
		root, modErr = FindModuleRoot(".")
		if modErr != nil {
			return
		}
		mod, modErr = LoadModule(root)
	})
	if modErr != nil {
		t.Fatalf("loading module: %v", modErr)
	}
	return mod
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// runFixture compiles the fixture directory as pkgPath and checks the
// analyzers' findings against the `// want` comments.
func runFixture(t *testing.T, dir, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	m := testModule(t)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(files)

	var wants []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, match := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(match[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, match[1], err)
				}
				wants = append(wants, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}

	pkg, err := m.CheckFiles(pkgPath, files)
	if err != nil {
		t.Fatalf("compiling fixture %s: %v", dir, err)
	}
	for _, d := range RunPackage(pkg, analyzers) {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestRNGShareFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "rngshare"), "voiceguard/fixtures/rngshare", RNGShare)
}

func TestSimClockFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "simclock"), "voiceguard/internal/scenario", SimClock)
}

// TestSimClockIgnoresWirePlane proves the package gating: the same
// wall-clock fixture compiled as the (allowlisted) proxy package
// produces no findings.
func TestSimClockIgnoresWirePlane(t *testing.T) {
	m := testModule(t)
	entries, err := os.ReadDir(filepath.Join("testdata", "src", "simclock"))
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join("testdata", "src", "simclock", e.Name()))
		}
	}
	pkg, err := m.CheckFiles("voiceguard/internal/proxy", files)
	if err != nil {
		t.Fatal(err)
	}
	var raw []Diagnostic
	pass := &Pass{Analyzer: SimClock, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, PkgPath: pkg.Path, diags: &raw}
	SimClock.Run(pass)
	if len(raw) != 0 {
		t.Fatalf("simclock fired in an allowlisted wire-plane package: %v", raw)
	}
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "hotalloc"), "voiceguard/internal/radio", HotAlloc)
}

func TestMetricLabelFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "metriclabel"), "voiceguard/fixtures/metriclabel", MetricLabel)
}

// TestMetricLabelExemptsMetricsPackage proves the package gating: the
// same fixture masquerading as the metrics package itself (which
// forwards caller-supplied names) produces no findings.
func TestMetricLabelExemptsMetricsPackage(t *testing.T) {
	m := testModule(t)
	files := []string{filepath.Join("testdata", "src", "metriclabel", "metriclabel.go")}
	pkg, err := m.CheckFiles("voiceguard/fixtures/metriclabel", files)
	if err != nil {
		t.Fatal(err)
	}
	var raw []Diagnostic
	pass := &Pass{Analyzer: MetricLabel, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, PkgPath: "voiceguard/internal/metrics", diags: &raw}
	MetricLabel.Run(pass)
	if len(raw) != 0 {
		t.Fatalf("metriclabel fired in the exempt metrics package: %v", raw)
	}
}

func TestTraceCtxFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "tracectx"), "voiceguard/internal/decision", TraceCtx)
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "maporder"), "voiceguard/internal/obs", MapOrder)
}

// TestMapOrderIgnoresWirePlane proves the package gating: the same
// fixture compiled outside the deterministic-sim set produces no
// findings.
func TestMapOrderIgnoresWirePlane(t *testing.T) {
	m := testModule(t)
	files := []string{filepath.Join("testdata", "src", "maporder", "maporder.go")}
	pkg, err := m.CheckFiles("voiceguard/fixtures/maporder", files)
	if err != nil {
		t.Fatal(err)
	}
	var raw []Diagnostic
	pass := &Pass{Analyzer: MapOrder, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, PkgPath: pkg.Path, Graph: graphFor(pkg), diags: &raw}
	MapOrder.Run(pass)
	if len(raw) != 0 {
		t.Fatalf("maporder fired outside the deterministic-sim packages: %v", raw)
	}
}

func TestLockHeldFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "lockheld"), "voiceguard/fixtures/lockheld", LockHeld)
}

func TestGoroLeakFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "goroleak"), "voiceguard/internal/scenario", GoroLeak)
}

// TestGoroLeakIgnoresWirePlane proves the package gating: goroutine
// hygiene is only enforced in the sim/fleet packages and the pool.
func TestGoroLeakIgnoresWirePlane(t *testing.T) {
	m := testModule(t)
	files := []string{filepath.Join("testdata", "src", "goroleak", "goroleak.go")}
	pkg, err := m.CheckFiles("voiceguard/fixtures/goroleak", files)
	if err != nil {
		t.Fatal(err)
	}
	var raw []Diagnostic
	pass := &Pass{Analyzer: GoroLeak, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, PkgPath: pkg.Path, Graph: graphFor(pkg), diags: &raw}
	GoroLeak.Run(pass)
	if len(raw) != 0 {
		t.Fatalf("goroleak fired outside its gated packages: %v", raw)
	}
}
