package analysis

import (
	"go/ast"
	"go/types"
)

// detSimPackages are the packages whose outputs must be pure
// functions of their seeds: the scenario engine, the fleet manager,
// the decision/radio/mobility/faults simulation layers, and the obs
// summaries the fleet view renders. Go randomizes map iteration order
// per run, so inside these packages a `range` over a map is only
// legal when the loop body is provably order-insensitive or the keys
// were sorted first — anything else silently breaks the
// bit-identical-replay guarantees the reproduction's tests pin.
var detSimPackages = map[string]bool{
	"voiceguard/internal/scenario": true,
	"voiceguard/internal/fleet":    true,
	"voiceguard/internal/decision": true,
	"voiceguard/internal/radio":    true,
	"voiceguard/internal/mobility": true,
	"voiceguard/internal/faults":   true,
	"voiceguard/internal/obs":      true,
}

// MapOrder flags map ranges in deterministic simulation packages
// whose iteration order can escape: into a slice that keeps element
// order (unless the slice is totally sorted afterwards), an RNG draw
// sequence (directly or through callees, via the call graph), a
// metric registration, a channel, or a floating-point accumulator.
// Order-insensitive bodies — counting, map-to-map transforms,
// collect-then-sort-keys — pass without annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not escape in deterministic sim packages; sort keys first or prove the body order-insensitive",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !detSimPackages[pass.PkgPath] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Info.Types[rs.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := findOrderSink(pass, fd, rs); sink != nil {
					pass.Reportf(rs.Pos(),
						"map iteration order escapes in deterministic package %s: %s; iterate sorted keys instead",
						pass.PkgPath, sink.what)
				}
				return true
			})
		}
	}
}
