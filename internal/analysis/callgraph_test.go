package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

// modulePkg returns the loaded module package with the given import
// path.
func modulePkg(t *testing.T, m *Module, path string) *Package {
	t.Helper()
	for _, pkg := range m.Packages() {
		if pkg.Path == path {
			return pkg
		}
	}
	t.Fatalf("package %s not in module", path)
	return nil
}

// findFunc resolves a function or method (recv non-empty) object in
// the package.
func findFunc(t *testing.T, pkg *Package, recv, name string) *types.Func {
	t.Helper()
	scope := pkg.Types.Scope()
	if recv == "" {
		fn, ok := scope.Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("%s.%s: not a package function", pkg.Path, name)
		}
		return fn
	}
	tn, ok := scope.Lookup(recv).(*types.TypeName)
	if !ok {
		t.Fatalf("%s.%s: not a type", pkg.Path, recv)
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s.(%s).%s: no such method", pkg.Path, recv, name)
	}
	return fn
}

// TestGraphStaticEdgesAndFacts pins the basics on the real module:
// fleet.Manager.RunRound statically calls parallel.Do (a module-local
// edge) and therefore carries a Block fact of its own.
func TestGraphStaticEdgesAndFacts(t *testing.T) {
	m := testModule(t)
	g := m.Graph()

	fleetPkg := modulePkg(t, m, "voiceguard/internal/fleet")
	runRound := findFunc(t, fleetPkg, "Manager", "RunRound")

	foundDo := false
	for _, e := range g.Edges(runRound) {
		if e.Callee.Name() == "Do" && e.Callee.Pkg().Path() == parallelPkg {
			foundDo = true
		}
	}
	if !foundDo {
		t.Errorf("Manager.RunRound: no static edge to parallel.Do; edges: %v", g.Edges(runRound))
	}

	facts := g.Facts(runRound)
	if facts == nil || facts.Block == nil {
		t.Errorf("Manager.RunRound: expected a Block fact (parallel.Do fan-out), got %+v", facts)
	}

	// The radio memo-miss path allocates (Sprintf key) and draws from
	// the seeded stream: both facts must be summarized.
	radioPkg := modulePkg(t, m, "voiceguard/internal/radio")
	uncached := findFunc(t, radioPkg, "Model", "shadowAtUncached")
	f := g.Facts(uncached)
	if f == nil || f.Alloc == nil {
		t.Errorf("shadowAtUncached: expected an Alloc fact, got %+v", f)
	}
	if f == nil || f.RNGDraw == nil {
		t.Errorf("shadowAtUncached: expected an RNGDraw fact, got %+v", f)
	}
}

// TestGraphInterfaceResolution pins method-set resolution: the fleet
// dispatch calls Home.RunDay through the interface, and the graph must
// fan that out to scenario's concrete implementation.
func TestGraphInterfaceResolution(t *testing.T) {
	m := testModule(t)
	g := m.Graph()

	fleetPkg := modulePkg(t, m, "voiceguard/internal/fleet")
	step := findFunc(t, fleetPkg, "Tenant", "step")

	found := false
	for _, e := range g.Edges(step) {
		if e.Callee.Name() == "RunDay" && e.Callee.Pkg().Path() == "voiceguard/internal/scenario" {
			found = true
		}
	}
	if !found {
		t.Errorf("Tenant.step: interface call Home.RunDay did not resolve to scenario's concrete method; edges: %v", g.Edges(step))
	}
}

// TestSearchDepthAndSkip pins the reachability query on the hotalloc
// reach fixture: deep1 -> deep2 -> deep3 -> deep4 -> deep5, with the
// allocation in deep5.
func TestSearchDepthAndSkip(t *testing.T) {
	m := testModule(t)
	files := []string{
		filepath.Join("testdata", "src", "hotalloc", "hotalloc.go"),
		filepath.Join("testdata", "src", "hotalloc", "reach.go"),
	}
	pkg, err := m.CheckFiles("voiceguard/fixtures/reach", files)
	if err != nil {
		t.Fatal(err)
	}
	g := graphFor(pkg)
	deep1 := findFunc(t, pkg, "", "deep1")
	alloc := func(f *FuncFacts) *Fact { return f.Alloc }

	// deep5 sits four hops from deep1: invisible at depth 3, found at
	// depth 4 with the full witness chain.
	if p := g.Search(deep1, 3, nil, alloc); p != nil {
		t.Errorf("depth-3 search from deep1 should be bounded out, found chain %v", p.Chain)
	}
	p := g.Search(deep1, 4, nil, alloc)
	if p == nil {
		t.Fatal("depth-4 search from deep1 found nothing")
	}
	want := []string{"deep2", "deep3", "deep4", "deep5"}
	if len(p.Chain) != len(want) {
		t.Fatalf("witness chain %v, want %v", p.Chain, want)
	}
	for i, fn := range p.Chain {
		if fn.Name() != want[i] {
			t.Fatalf("witness chain %v, want %v", p.Chain, want)
		}
	}

	// The same query twice returns the same witness: the graph's edge
	// order is fixed, so searches are deterministic.
	q := g.Search(deep1, 4, nil, alloc)
	if q == nil || len(q.Chain) != len(p.Chain) {
		t.Fatalf("repeat search diverged: %v vs %v", p.Chain, q)
	}
	for i := range p.Chain {
		if p.Chain[i] != q.Chain[i] {
			t.Fatalf("repeat search diverged: %v vs %v", p.Chain, q.Chain)
		}
	}

	// Pruning deep3 cuts the only path to the allocation.
	skip := func(fn *types.Func) bool { return fn.Name() == "deep3" }
	if p := g.Search(deep1, 4, skip, alloc); p != nil {
		t.Errorf("search with deep3 pruned should find nothing, found chain %v", p.Chain)
	}

	// buildKey reaches fmt one hop down (fact lives on formatKey).
	buildKey := findFunc(t, pkg, "", "buildKey")
	if p := g.Search(buildKey, 3, nil, alloc); p == nil || len(p.Chain) != 1 || p.Chain[0].Name() != "formatKey" {
		t.Errorf("search from buildKey: got %+v, want chain [formatKey]", p)
	}
}

// callgraphFixture compiles the interprocedural-layer fixture under
// the given masqueraded path.
func callgraphFixture(t *testing.T, pkgPath string) (*Package, *CallGraph) {
	t.Helper()
	m := testModule(t)
	files := []string{filepath.Join("testdata", "src", "callgraph", "callgraph.go")}
	pkg, err := m.CheckFiles(pkgPath, files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, graphFor(pkg)
}

// TestGoroutineWorkDoesNotBlockSpawner pins the go-subtree rules: a
// function that only spawns a goroutine doing channel ops carries no
// Block fact, a `go f()` edge is Go-marked, and SearchSync refuses to
// traverse it while the full Search (determinism/alloc queries) still
// does.
func TestGoroutineWorkDoesNotBlockSpawner(t *testing.T) {
	pkg, g := callgraphFixture(t, "voiceguard/fixtures/callgraph")

	spawnDrain := findFunc(t, pkg, "", "spawnDrain")
	if f := g.Facts(spawnDrain); f == nil || f.Block != nil {
		t.Errorf("spawnDrain: goroutine-only channel op must not be a Block fact, got %+v", f)
	}

	spawnWorker := findFunc(t, pkg, "", "spawnWorker")
	if f := g.Facts(spawnWorker); f == nil || f.Block != nil {
		t.Errorf("spawnWorker: go statement on a named function must not be a Block fact, got %+v", f)
	}
	edges := g.Edges(spawnWorker)
	if len(edges) != 1 || edges[0].Callee.Name() != "drainWorker" || !edges[0].Go {
		t.Fatalf("spawnWorker: want one Go-marked edge to drainWorker, got %+v", edges)
	}

	block := func(f *FuncFacts) *Fact { return f.Block }
	if p := g.SearchSync(spawnWorker, 3, nil, block); p != nil {
		t.Errorf("SearchSync traversed a go-marked edge: chain %v", p.Chain)
	}
	if p := g.Search(spawnWorker, 3, nil, block); p == nil {
		t.Error("full Search should still see drainWorker's Block fact through the go edge")
	}
}

// TestInterfaceResolutionDedup pins the T/*T collapse: Val implements
// Doer with a value receiver, so both Val and *Val are candidates,
// but Dispatch's interface call must resolve to exactly one Val.Do
// edge.
func TestInterfaceResolutionDedup(t *testing.T) {
	pkg, g := callgraphFixture(t, "voiceguard/fixtures/callgraph2")

	dispatch := findFunc(t, pkg, "", "Dispatch")
	count := 0
	for _, e := range g.Edges(dispatch) {
		if e.Callee.Name() == "Do" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("Dispatch: want exactly one resolved Do edge, got %d (edges %+v)", count, g.Edges(dispatch))
	}
}

// TestFixtureOverlayDoesNotLeak pins the overlay design: compiling a
// fixture extends the module graph without mutating it — the module
// graph has no facts for fixture-only functions.
func TestFixtureOverlayDoesNotLeak(t *testing.T) {
	m := testModule(t)
	files := []string{
		filepath.Join("testdata", "src", "hotalloc", "hotalloc.go"),
		filepath.Join("testdata", "src", "hotalloc", "reach.go"),
	}
	pkg, err := m.CheckFiles("voiceguard/fixtures/overlay", files)
	if err != nil {
		t.Fatal(err)
	}
	over := graphFor(pkg)
	deep1 := findFunc(t, pkg, "", "deep1")
	if over.Facts(deep1) == nil {
		t.Fatal("overlay graph is missing the fixture's own functions")
	}
	if m.Graph().Facts(deep1) != nil {
		t.Error("fixture compilation leaked facts into the shared module graph")
	}
}
