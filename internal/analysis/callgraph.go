package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural layer under the determinism rule
// pack: a module-wide call graph over go/types with per-function fact
// summaries and depth-bounded reachability queries.
//
// Nodes are *types.Func objects. Because the module is type-checked
// once against a shared FileSet and module-local imports resolve to
// the already-checked *types.Package, a function is the same object
// everywhere it is referenced — identity comparison is sound across
// packages, and fixture packages compiled with CheckFiles reuse the
// module's objects for everything they import.
//
// Edges are static: a call through an identifier or selector resolves
// to the named function or method; a call through an interface method
// resolves, by method-set resolution, to every module-local concrete
// method that implements it. Calls through plain function values are
// dynamic and carry no edge — the rules built on the graph treat them
// as opaque, which keeps the layer an under-approximation (it can
// miss, it does not invent).

// Fact is one interesting direct property of a function body, with
// the position it was observed at and a human-readable description.
type Fact struct {
	Pos  token.Pos
	What string
}

// FuncFacts summarizes the direct (intra-procedural) behavior of one
// function body. Each field holds the first observed instance, or nil.
type FuncFacts struct {
	// Alloc is a hot-path allocation source: a fmt call, string
	// concatenation, or string<->[]byte conversion.
	Alloc *Fact
	// Block is a blocking operation: a channel send/receive/select,
	// ranging over a channel, sync.WaitGroup.Wait, time.Sleep, or a
	// parallel.Map/MapErr/Do fan-out. Operations inside a go
	// statement's subtree are excluded: they run on the spawned
	// goroutine and never block the function that spawned it.
	Block *Fact
	// RNGDraw is a state-consuming draw: any *rng.Source method other
	// than the pure Split/SplitN/Seed/Fresh, or a math/rand call.
	RNGDraw *Fact
	// Metric is a metric-family registration call (metrics.Counter,
	// Registry.HistogramVec, ...), whose order fixes series identity.
	Metric *Fact
}

// Edge is one static call: the call site inside the caller and the
// resolved callee. Interface calls fan out to one Edge per module
// concrete method implementing the interface method. Go marks a call
// site inside a go statement's subtree: the callee runs on a spawned
// goroutine, so blocking queries (SearchSync) do not traverse it,
// while allocation and determinism queries (Search) still do.
type Edge struct {
	Site   token.Pos
	Callee *types.Func
	Go     bool
}

// Path is a reachability witness returned by Search: the chain of
// successive callees from (and excluding) the origin, ending at the
// function whose facts satisfied the query.
type Path struct {
	Chain []*types.Func
	Fact  *Fact
}

// CallGraph is the module-wide static call graph plus per-function
// fact summaries. It is built once per Module (see Module.Graph) and
// is safe for concurrent readers. A fixture package that is not part
// of the module extends the graph with an overlay (see extend):
// lookups consult the overlay first, then the shared base.
type CallGraph struct {
	parent *CallGraph
	edges  map[*types.Func][]Edge
	facts  map[*types.Func]*FuncFacts
}

// Edges returns the outgoing static call edges of fn in source order.
func (g *CallGraph) Edges(fn *types.Func) []Edge {
	for c := g; c != nil; c = c.parent {
		if es, ok := c.edges[fn]; ok {
			return es
		}
	}
	return nil
}

// Facts returns fn's direct-behavior summary, or nil for functions
// outside the graph (standard library, dynamic values).
func (g *CallGraph) Facts(fn *types.Func) *FuncFacts {
	for c := g; c != nil; c = c.parent {
		if f, ok := c.facts[fn]; ok {
			return f
		}
	}
	return nil
}

// Search walks the call graph breadth-first from `from`, visiting
// `from` itself and every function reachable within depth call hops,
// and returns a witness path to the first function whose facts
// satisfy sel. skip prunes functions (and everything only reachable
// through them); it may be nil. Traversal order is deterministic:
// edges are recorded in source order and ties break breadth-first, so
// the same tree always yields the same witness.
func (g *CallGraph) Search(from *types.Func, depth int, skip func(*types.Func) bool, sel func(*FuncFacts) *Fact) *Path {
	return g.search(from, depth, skip, sel, true)
}

// SearchSync is Search restricted to synchronous control flow: edges
// whose call site sits inside a go statement are not traversed, since
// work handed to a spawned goroutine never blocks (or runs under the
// locks of) the function that spawned it. Blocking queries use this;
// allocation and determinism queries keep the full Search, where a
// goroutine's draws and allocations still matter.
func (g *CallGraph) SearchSync(from *types.Func, depth int, skip func(*types.Func) bool, sel func(*FuncFacts) *Fact) *Path {
	return g.search(from, depth, skip, sel, false)
}

func (g *CallGraph) search(from *types.Func, depth int, skip func(*types.Func) bool, sel func(*FuncFacts) *Fact, followGo bool) *Path {
	if from == nil || (skip != nil && skip(from)) {
		return nil
	}
	type node struct {
		fn    *types.Func
		chain []*types.Func
	}
	visited := map[*types.Func]bool{from: true}
	frontier := []node{{fn: from}}
	for d := 0; d <= depth && len(frontier) > 0; d++ {
		var next []node
		for _, n := range frontier {
			if f := g.Facts(n.fn); f != nil {
				if fact := sel(f); fact != nil {
					return &Path{Chain: n.chain, Fact: fact}
				}
			}
			for _, e := range g.Edges(n.fn) {
				if !followGo && e.Go {
					continue
				}
				if visited[e.Callee] || (skip != nil && skip(e.Callee)) {
					continue
				}
				visited[e.Callee] = true
				chain := make([]*types.Func, len(n.chain)+1)
				copy(chain, n.chain)
				chain[len(n.chain)] = e.Callee
				next = append(next, node{fn: e.Callee, chain: chain})
			}
		}
		frontier = next
	}
	return nil
}

// graphFor returns the call graph a pass over pkg should query: the
// module graph itself for module packages, or an overlay extending it
// with the package's own declarations for fixture packages compiled
// via CheckFiles.
func graphFor(pkg *Package) *CallGraph {
	if pkg.mod == nil {
		return &CallGraph{edges: map[*types.Func][]Edge{}, facts: map[*types.Func]*FuncFacts{}}
	}
	base := pkg.mod.Graph()
	if p, ok := pkg.mod.pkgs[pkg.Path]; ok && p == pkg {
		return base
	}
	return base.extend(pkg)
}

// buildCallGraph derives the shared graph from every loaded package,
// in sorted package order so edge and fact maps populate
// deterministically.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		edges: make(map[*types.Func][]Edge),
		facts: make(map[*types.Func]*FuncFacts),
	}
	b := &graphBuilder{g: g, modPath: m.Path}
	pkgs := m.Packages()
	for _, pkg := range pkgs {
		b.collectTypes(pkg)
	}
	b.sortConcrete()
	for _, pkg := range pkgs {
		b.addPackage(pkg)
	}
	return g
}

// extend overlays one extra package (a compiled fixture) on top of a
// built graph. The overlay resolves its interface calls against the
// module's concrete types plus its own.
func (g *CallGraph) extend(pkg *Package) *CallGraph {
	over := &CallGraph{
		parent: g,
		edges:  make(map[*types.Func][]Edge),
		facts:  make(map[*types.Func]*FuncFacts),
	}
	b := &graphBuilder{g: over, modPath: pkg.mod.Path}
	for _, mp := range pkg.mod.Packages() {
		b.collectTypes(mp)
	}
	b.collectTypes(pkg)
	b.sortConcrete()
	b.addPackage(pkg)
	return over
}

// graphBuilder accumulates one CallGraph.
type graphBuilder struct {
	g        *CallGraph
	modPath  string
	concrete []types.Type // named module types (and pointers to them), for method-set resolution
}

// collectTypes records every package-level named type of pkg, in
// declaration (scope name) order, as an interface-implementation
// candidate.
func (b *graphBuilder) collectTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		b.concrete = append(b.concrete, named, types.NewPointer(named))
	}
}

// sortConcrete fixes the candidate order so interface resolution
// produces the same edge order on every build.
func (b *graphBuilder) sortConcrete() {
	sort.Slice(b.concrete, func(i, j int) bool {
		return types.TypeString(b.concrete[i], nil) < types.TypeString(b.concrete[j], nil)
	})
}

// addPackage walks every function declaration of pkg, recording its
// outgoing edges and direct facts. Function literals contribute to
// their enclosing declaration: whether a closure runs inline or on a
// worker, its behavior is attributed to the function that created it
// — except that inside a go statement's subtree, Block facts are not
// recorded (the spawned goroutine's channel ops never block the
// spawner) and edges are marked Go so SearchSync skips them.
func (b *graphBuilder) addPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts := &FuncFacts{}
			b.g.facts[fn] = facts
			b.walkBody(pkg, fn, facts, fd.Body, false)
		}
	}
}

// walkBody visits every node under root, switching inGo on when it
// descends into a go statement's call (and staying on for anything
// nested deeper).
func (b *graphBuilder) walkBody(pkg *Package, fn *types.Func, facts *FuncFacts, root ast.Node, inGo bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok && !inGo {
			b.walkBody(pkg, fn, facts, gs.Call, true)
			return false
		}
		b.visit(pkg, fn, facts, n, inGo)
		return true
	})
}

// visit processes one node inside fn's body (closures included).
func (b *graphBuilder) visit(pkg *Package, fn *types.Func, facts *FuncFacts, n ast.Node, inGo bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		b.visitCall(pkg, fn, facts, n, inGo)
	case *ast.SendStmt:
		if !inGo {
			record(&facts.Block, n.Pos(), "a channel send")
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !inGo {
			record(&facts.Block, n.Pos(), "a channel receive")
		}
	case *ast.SelectStmt:
		if !inGo {
			record(&facts.Block, n.Pos(), "a select statement")
		}
	case *ast.RangeStmt:
		if !inGo {
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					record(&facts.Block, n.Pos(), "ranging over a channel")
				}
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(pkg.Info.Types[n].Type) {
			record(&facts.Alloc, n.Pos(), "string concatenation")
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pkg.Info.Types[n.Lhs[0]].Type) {
			record(&facts.Alloc, n.Pos(), "string +=")
		}
	}
}

// visitCall classifies one call: records facts it evidences and the
// static edge(s) it contributes. Block facts are suppressed inside go
// subtrees — the spawned goroutine blocks, not the spawner.
func (b *graphBuilder) visitCall(pkg *Package, fn *types.Func, facts *FuncFacts, call *ast.CallExpr, inGo bool) {
	if to, from := conversionKind(pkg.Info, call); to != "" {
		record(&facts.Alloc, call.Pos(), to+"("+from+") conversion")
		return
	}
	callee := callee(pkg.Info, call)
	if callee == nil {
		return
	}
	if cp := callee.Pkg(); cp != nil {
		switch cp.Path() {
		case "fmt":
			record(&facts.Alloc, call.Pos(), "fmt."+callee.Name())
		case "time":
			if callee.Name() == "Sleep" && !inGo {
				record(&facts.Block, call.Pos(), "time.Sleep")
			}
		case "math/rand", "math/rand/v2":
			record(&facts.RNGDraw, call.Pos(), cp.Path()+"."+callee.Name())
		case parallelPkg:
			switch callee.Name() {
			case "Map", "MapErr", "Do":
				if !inGo {
					record(&facts.Block, call.Pos(), "parallel."+callee.Name()+" fan-out")
				}
			}
		case "sync":
			if callee.Name() == "Wait" && recvNamed(callee, "sync", "WaitGroup") && !inGo {
				record(&facts.Block, call.Pos(), "sync.WaitGroup.Wait")
			}
		case metricsPkgPath:
			if metricRegistrars[callee.Name()] {
				record(&facts.Metric, call.Pos(), "metrics."+callee.Name()+" registration")
			}
		}
	}
	if isRNGDraw(callee) {
		record(&facts.RNGDraw, call.Pos(), "rng.Source."+callee.Name()+" draw")
	}
	b.addEdges(fn, call.Pos(), callee, inGo)
}

// addEdges records the static edge fn -> callee, resolving interface
// methods to every module concrete method implementing them. Only
// module-local callees become edges: standard-library behavior the
// rules care about (fmt, time.Sleep, ...) is folded into the caller's
// own facts instead.
func (b *graphBuilder) addEdges(fn *types.Func, site token.Pos, callee *types.Func, inGo bool) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			b.resolveInterfaceCall(fn, site, callee, iface, inGo)
			return
		}
	}
	if b.moduleLocal(callee) {
		b.g.edges[fn] = append(b.g.edges[fn], Edge{Site: site, Callee: callee, Go: inGo})
	}
}

// resolveInterfaceCall adds one edge per module concrete method that
// can be behind an interface method call, in sorted type order. The
// candidate list holds both T and *T; when value-receiver methods make
// both implement the interface they resolve to the same *types.Func,
// so impls are deduped per call site.
func (b *graphBuilder) resolveInterfaceCall(fn *types.Func, site token.Pos, method *types.Func, iface *types.Interface, inGo bool) {
	seen := map[*types.Func]bool{}
	for _, ct := range b.concrete {
		if !types.Implements(ct, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ct, true, method.Pkg(), method.Name())
		impl, ok := obj.(*types.Func)
		if !ok || !b.moduleLocal(impl) || seen[impl] {
			continue
		}
		seen[impl] = true
		b.g.edges[fn] = append(b.g.edges[fn], Edge{Site: site, Callee: impl, Go: inGo})
	}
}

// moduleLocal reports whether fn is declared in this module (fixture
// packages masquerading under the module path included).
func (b *graphBuilder) moduleLocal(fn *types.Func) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	path := p.Path()
	return path == b.modPath || len(path) > len(b.modPath) &&
		path[:len(b.modPath)] == b.modPath && path[len(b.modPath)] == '/'
}

// record sets a fact slot on first observation.
func record(slot **Fact, pos token.Pos, what string) {
	if *slot == nil {
		*slot = &Fact{Pos: pos, What: what}
	}
}

// rngPureMethods are the *rng.Source methods that consume no stream
// state: calling them in any order is deterministic by construction.
var rngPureMethods = map[string]bool{
	"Split": true, "SplitN": true, "Seed": true, "Fresh": true,
}

// isRNGDraw reports whether fn is a state-consuming *rng.Source
// method.
func isRNGDraw(fn *types.Func) bool {
	if fn == nil || rngPureMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedPtrTo(sig.Recv().Type(), "voiceguard/internal/rng", "Source")
}

// recvNamed reports whether fn's receiver is pkg.name or *pkg.name.
func recvNamed(fn *types.Func, pkgPath, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// FuncOf resolves a FuncDecl to its types.Func object.
func FuncOf(info *types.Info, fd *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	return fn
}
