package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSnippet compiles one source string as pkgPath and runs the
// analyzers over it through the full suppression pipeline.
func checkSnippet(t *testing.T, pkgPath, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	m := testModule(t)
	path := filepath.Join(t.TempDir(), "snippet.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := m.CheckFiles(pkgPath, []string{path})
	if err != nil {
		t.Fatalf("compiling snippet: %v", err)
	}
	return RunPackage(pkg, analyzers)
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	src := `package scenario

import "time"

func a() time.Time {
	//vglint:allow simclock wall clock is the measurement
	return time.Now()
}

func b() time.Time {
	return time.Now() //vglint:allow simclock wall clock is the measurement
}
`
	if diags := checkSnippet(t, "voiceguard/internal/scenario", src, SimClock); len(diags) != 0 {
		t.Fatalf("annotated findings survived: %v", diags)
	}
}

func TestSuppressionIsRuleSpecific(t *testing.T) {
	src := `package scenario

import "time"

func a() time.Time {
	//vglint:allow hotalloc wrong rule on purpose
	return time.Now()
}
`
	diags := checkSnippet(t, "voiceguard/internal/scenario", src, SimClock)
	if len(diags) != 1 || diags[0].Rule != "simclock" {
		t.Fatalf("want the simclock finding to survive a hotalloc directive, got %v", diags)
	}
}

func TestStaleDirectiveIsReported(t *testing.T) {
	src := `package scenario

//vglint:allow simclock nothing below this line violates anything

func a() int { return 1 }
`
	diags := checkSnippet(t, "voiceguard/internal/scenario", src, SimClock)
	if len(diags) != 1 || diags[0].Rule != directiveRule || !strings.Contains(diags[0].Message, "suppresses nothing") {
		t.Fatalf("want one stale-directive finding, got %v", diags)
	}
}

func TestStaleDirectiveIgnoredWhenRuleNotRun(t *testing.T) {
	src := `package scenario

//vglint:allow hotalloc this rule is not part of the run

func a() int { return 1 }
`
	if diags := checkSnippet(t, "voiceguard/internal/scenario", src, SimClock); len(diags) != 0 {
		t.Fatalf("directive for a rule outside the run set was reported: %v", diags)
	}
}

func TestMalformedDirectives(t *testing.T) {
	src := `package scenario

//vglint:allow simclock

func a() int { return 1 }

//vglint:allow nosuchrule with a perfectly fine reason

func b() int { return 2 }
`
	diags := checkSnippet(t, "voiceguard/internal/scenario", src, SimClock)
	if len(diags) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %v", diags)
	}
	for _, d := range diags {
		if d.Rule != directiveRule || !strings.Contains(d.Message, "malformed directive") {
			t.Fatalf("want malformed-directive findings, got %v", diags)
		}
	}
}

func TestRunPackageOrdersFindings(t *testing.T) {
	src := `package scenario

import "time"

func b() { time.Sleep(time.Second) }

func a() time.Time { return time.Now() }
`
	diags := checkSnippet(t, "voiceguard/internal/scenario", src, SimClock)
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got %v", diags)
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Fatalf("findings not in position order: %v", diags)
	}
}

func TestByNameAndAll(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Run == nil || a.Doc == "" {
			t.Fatalf("incomplete analyzer registration: %+v", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate rule name %q", a.Name)
		}
		names[a.Name] = true
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	for _, want := range []string{"rngshare", "simclock", "hotalloc", "tracectx"} {
		if !names[want] {
			t.Fatalf("rule %q missing from All(): have %v", want, names)
		}
	}
	if _, ok := ByName("nosuchrule"); ok {
		t.Fatal("ByName accepted an unknown rule")
	}
}
