package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroleakPackages are where stray goroutines are forbidden: the
// deterministic sim/fleet packages (a goroutine with no join makes
// completion a scheduler race, which is exactly what the
// bit-identical-replay tests cannot tolerate) plus the parallel pool
// itself, whose own workers must stay provably joined.
func goroleakGated(pkgPath string) bool {
	return detSimPackages[pkgPath] || pkgPath == parallelPkg
}

// GoroLeak flags `go` statements in sim/fleet packages with no
// visible join path: the goroutine body neither signals a captured
// sync.WaitGroup whose Wait the enclosing function calls, nor
// communicates over a captured channel (send, receive, close, or
// select), which is the other structured way a spawner observes
// completion or shutdown. A `go` on a named function is always
// flagged — its join protocol, if any, is not visible at the spawn
// site, and sim code should use the parallel pool instead.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines in sim/fleet packages need a join path: a WaitGroup the spawner waits on, or a captured channel",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if !goroleakGated(pass.PkgPath) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, fd, gs)
				return true
			})
		}
	}
}

func checkGoStmt(pass *Pass, fd *ast.FuncDecl, gs *ast.GoStmt) {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		pass.Reportf(gs.Pos(),
			"go statement on a named function in sim package %s has no visible join path; use parallel.Do/Map or spawn a closure that signals a WaitGroup or channel",
			pass.PkgPath)
		return
	}
	if wg := joinedWaitGroup(pass, lit); wg != nil {
		if waitsOn(pass, fd, wg) {
			return
		}
		pass.Reportf(gs.Pos(),
			"goroutine signals WaitGroup %q but the spawning function never calls Wait on it; join the goroutine or hand the WaitGroup to whoever does",
			wg.Name())
		return
	}
	if usesCapturedChannel(pass, lit) {
		return
	}
	pass.Reportf(gs.Pos(),
		"goroutine in sim package %s has no join path: no captured WaitGroup is signalled and no captured channel is touched, so nothing can wait for or stop it",
		pass.PkgPath)
}

// joinedWaitGroup returns the captured *sync.WaitGroup variable the
// goroutine body calls Done on, or nil.
func joinedWaitGroup(pass *Pass, lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass.Info, call)
		if fn == nil || fn.Name() != "Done" || !recvNamed(fn, "sync", "WaitGroup") {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if v := rootVar(pass.Info, sel.X); v != nil && v.Pos() < lit.Pos() {
			found = v
		}
		return true
	})
	return found
}

// waitsOn reports whether fd's body contains wg.Wait() on the same
// WaitGroup variable.
func waitsOn(pass *Pass, fd *ast.FuncDecl, wg *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass.Info, call)
		if fn == nil || fn.Name() != "Wait" || !recvNamed(fn, "sync", "WaitGroup") {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && rootVar(pass.Info, sel.X) == wg {
			found = true
		}
		return true
	})
	return found
}

// usesCapturedChannel reports whether the goroutine body performs a
// channel operation (send, receive, close, select case, range) on a
// channel declared outside the literal — the structured shutdown/join
// idiom the runtime collector and the pool workers use.
func usesCapturedChannel(pass *Pass, lit *ast.FuncLit) bool {
	captured := func(e ast.Expr) bool {
		v := rootVar(pass.Info, e)
		if v == nil || v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return false
		}
		t := pass.Info.Types[e].Type
		if t == nil {
			return false
		}
		_, isChan := t.Underlying().(*types.Chan)
		return isChan
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = captured(n.Chan)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = captured(n.X)
			}
		case *ast.RangeStmt:
			if captured(n.X) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					found = captured(n.Args[0])
				}
			}
		}
		return !found
	})
	return found
}

// rootVar resolves an expression to the variable at its root: the
// identifier itself, or the base of a selector/unary chain (`&wg`,
// `s.done`). Selector chains resolve to the field variable, which is
// good enough for capture checks.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := identObj(info, e).(*types.Var)
		return v
	case *ast.UnaryExpr:
		return rootVar(info, e.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}
