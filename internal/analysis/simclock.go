package analysis

import (
	"go/ast"
)

// simClockPackages are the deterministic simulation packages: whole
// multi-day experiments execute in microseconds and must replay
// bit-identically for a seed, so time flows only through a
// simtime.Clock. The wire-plane packages (proxy, emul, the live
// guard) run on real sockets and are deliberately outside this set.
var simClockPackages = map[string]bool{
	"voiceguard/internal/scenario":  true,
	"voiceguard/internal/radio":     true,
	"voiceguard/internal/recognize": true,
	"voiceguard/internal/mobility":  true,
	"voiceguard/internal/stats":     true,
	"voiceguard/internal/faults":    true,
	"voiceguard/internal/push":      true,
}

// wallClockFuncs are the package time functions that read or wait on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// SimClock flags wall-clock reads and waits inside the deterministic
// simulation packages, where a simtime.Clock must be used instead: a
// single time.Now on a simulated path silently decouples results from
// the seed and rots the paper's reproduced numbers.
var SimClock = &Analyzer{
	Name: "simclock",
	Doc:  "simulation packages must read time from a simtime.Clock, never the wall clock",
	Run:  runSimClock,
}

func runSimClock(pass *Pass) {
	if !simClockPackages[pass.PkgPath] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in deterministic simulation package %s; take a simtime.Clock (Real{} in production) so seeded runs replay bit-identically",
				fn.Name(), pass.PkgPath)
			return true
		})
	}
}
