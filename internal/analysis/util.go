package analysis

import (
	"go/ast"
	"go/types"
)

// callee resolves a call expression to the statically named function
// or method it invokes, or nil for dynamic calls (function values,
// interface methods resolve too — the *types.Func is the interface
// method).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedPtrTo reports whether t is *pkgPath.name, unwrapping aliases.
func namedPtrTo(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		// A plain pointer type has itself as underlying; also accept
		// the direct case for robustness.
		if p, ok2 := t.(*types.Pointer); ok2 {
			ptr = p
		} else {
			return false
		}
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// typeString renders a type compactly for diagnostics, qualified by
// package base name ("*rng.Source").
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
