package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 7
	}
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2.5) > 1e-12 || math.Abs(intercept+7) > 1e-12 {
		t.Fatalf("fit = (%v, %v), want (2.5, -7)", slope, intercept)
	}
}

func TestLinearFitRecoversNoisyLine(t *testing.T) {
	// Deterministic pseudo-noise.
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		x := float64(i) * 0.2
		noise := 0.3 * math.Sin(float64(i)*1.7)
		xs[i] = x
		ys[i] = -1.2*x - 3 + noise
	}
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope+1.2) > 0.1 || math.Abs(intercept+3) > 0.5 {
		t.Fatalf("fit = (%v, %v), want ~(-1.2, -3)", slope, intercept)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("single point: err = %v", err)
	}
	if _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("zero x variance: err = %v", err)
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestLinearFitPropertySlopeSignMatchesTrend(t *testing.T) {
	f := func(a int8, b int8) bool {
		slope := float64(a)
		if slope == 0 {
			return true
		}
		xs := []float64{0, 1, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + float64(b)
		}
		got, _, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return (got > 0) == (slope > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionPaperTable1(t *testing.T) {
	// Table I: 132 TP, 2 FN, 149 TN, 0 FP.
	c := Confusion{TP: 132, FN: 2, TN: 149, FP: 0}
	if got := c.Total(); got != 283 {
		t.Fatalf("total = %d, want 283", got)
	}
	if got := 100 * c.Accuracy(); math.Abs(got-99.29) > 0.01 {
		t.Fatalf("accuracy = %.2f%%, want 99.29%%", got)
	}
	if got := c.Precision(); got != 1.0 {
		t.Fatalf("precision = %v, want 1", got)
	}
	if got := 100 * c.Recall(); math.Abs(got-98.51) > 0.01 {
		t.Fatalf("recall = %.2f%%, want 98.51%%", got)
	}
}

func TestConfusionAdd(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("unexpected counts: %+v", c)
	}
	if c.F1() != 0.5 {
		t.Fatalf("F1 = %v, want 0.5", c.F1())
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("merge result: %+v", a)
	}
}

func TestConfusionEmptyIsZero(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should report zeros")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 50, want: 3},
		{p: 100, want: 5},
		{p: 25, want: 2},
		{p: 75, want: 4},
		{p: 110, want: 5},
		{p: -5, want: 1},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("P50 of {0,10} = %v, want 5", got)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5, 3.5}
	if got := FractionBelow(xs, 2.0); got != 0.5 {
		t.Fatalf("FractionBelow = %v, want 0.5", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary should be zero")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.9, 1.5, 2.5, 3.5, -1, 10}
	h := Histogram(xs, 0, 4, 4)
	want := []int{3, 1, 1, 2} // -1 clamps into bin 0, 10 into bin 3
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if h := Histogram([]float64{1, 2}, 5, 5, 3); h[0] != 0 || h[1] != 0 || h[2] != 0 {
		t.Fatal("degenerate range should count nothing")
	}
	if h := Histogram([]float64{1}, 0, 1, 0); len(h) != 0 {
		t.Fatal("zero bins should return empty histogram")
	}
}

func TestHistogramTotalPreserved(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		h := Histogram(xs, 0, 256, 16)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
