// Package stats provides the statistics used across the evaluation:
// least-squares linear regression (the floor-level trace classifier of
// Fig. 10 fits a line to 40 RSSI samples), binary-classification
// confusion matrices (Tables I-IV), and summary statistics and
// histograms (Fig. 7's delay distributions).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more points
// than were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// LinearFit fits y = slope*x + intercept by ordinary least squares.
// It requires at least two points with non-zero x variance.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - meanX
		sxx += dx * dx
		sxy += dx * (ys[i] - meanY)
	}
	if sxx == 0 {
		return 0, 0, ErrInsufficientData
	}
	slope = sxy / sxx
	intercept = meanY - slope*meanX
	return slope, intercept, nil
}

// Confusion is a binary-classification confusion matrix. Following
// the paper's convention, a malicious command is the Positive class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one observation: actual is the ground-truth class,
// predicted the classifier's output (true = positive).
func (c *Confusion) Add(actual, predicted bool) {
	switch {
	case actual && predicted:
		c.TP++
	case actual && !predicted:
		c.FN++
	case !actual && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Merge adds another confusion matrix's counts into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of recorded observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there were no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.2f%% prec=%.2f%% rec=%.2f%%",
		c.TP, c.FP, c.TN, c.FN, 100*c.Accuracy(), 100*c.Precision(), 100*c.Recall())
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on empty input.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionBelow returns the fraction of xs strictly below limit.
func FractionBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary bundles the descriptive statistics reported for delay
// distributions.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs. A zero Summary is returned for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  Std(xs),
		Min:  Min(xs),
		Max:  Max(xs),
		P50:  Percentile(xs, 50),
		P90:  Percentile(xs, 90),
		P99:  Percentile(xs, 99),
	}
}

// Histogram counts xs into equal-width bins over [lo, hi). Values
// outside the range are clamped into the first or last bin.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}
