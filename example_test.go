package voiceguard_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"voiceguard"
	"voiceguard/internal/emul"
)

// Run the paper's protection protocol in the two-floor house with one
// owner phone and report whether VoiceGuard held the line.
func ExampleRunExperiment() {
	result, err := voiceguard.RunExperiment(voiceguard.ExperimentConfig{
		Testbed: voiceguard.TestbedHouse,
		Spot:    "A",
		Speaker: voiceguard.EchoDot,
		Devices: []voiceguard.Device{{Name: "phone", Model: voiceguard.Pixel5}},
		Days:    2,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacks blocked: %d/%d\n", result.Metrics.TP, result.Metrics.TP+result.Metrics.FN)
	fmt.Printf("legit allowed:   %d/%d\n", result.Metrics.TN, result.Metrics.TN+result.Metrics.FP)
	// Output:
	// attacks blocked: 18/18
	// legit allowed:   26/26
}

// Classify every spike of 134 Echo Dot invocations — the Table I
// study.
func ExampleRecognizeTraffic() {
	res := voiceguard.RecognizeTraffic(134, 21)
	fmt.Printf("precision %.0f%%, naive precision %.0f%%\n",
		100*res.PhaseAware.Precision, 100*res.Naive.Precision)
	// Output:
	// precision 100%, naive precision 48%
}

// Calibrate the walk-the-room threshold for the house's living room.
func ExampleCalibrateThreshold() {
	thr, err := voiceguard.CalibrateThreshold(voiceguard.TestbedHouse, "A", voiceguard.Pixel5, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold near -8 dB: %v\n", thr > -10 && thr < -7)
	// Output:
	// threshold near -8 dB: true
}

// Protect a (simulated) cloud session on real sockets: the guard
// holds the speaker's command traffic until the decision arrives.
func ExampleStartLiveGuard() {
	cloud, err := emul.NewCloudServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer cloud.Close()

	// A decision source that always finds the owner at home.
	ownerHome := func(ctx context.Context) bool { return true }

	guard, err := voiceguard.StartLiveGuard("127.0.0.1:0", cloud.Addr(), ownerHome, 300*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer guard.Close()

	speaker, err := emul.DialSpeaker(guard.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer speaker.Close()

	// An Echo-style command phase (p-138 marker in the first five
	// records) followed by the end-of-command frame.
	if err := speaker.SendPattern([]int{277, 138, 90, 113, 131, 1100}, emul.MsgCommand); err != nil {
		log.Fatal(err)
	}
	if err := speaker.SendPattern([]int{60}, emul.MsgEnd); err != nil {
		log.Fatal(err)
	}
	frame, err := speaker.Await(3 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud replied: %v\n", frame.Type == emul.MsgResponse)
	// Output:
	// cloud replied: true
}
