package voiceguard

import (
	"time"

	"voiceguard/internal/obs"
)

// DefaultLiveHoldP99Max bounds the wire plane's p99 hold duration: a
// held burst should be adjudicated well before the speaker's cloud
// session or the user notices the stall.
const DefaultLiveHoldP99Max = 2 * time.Second

// LiveObjectives returns the wire plane's SLO set: the stock pipeline
// objectives plus the live hold-latency bound, evaluated over the
// metrics `vgproxy -metrics-addr` serves.
func LiveObjectives() []obs.Objective {
	return append(obs.DefaultObjectives(), obs.Objective{
		Name:     "live-hold-p99",
		Kind:     obs.SLOLatency,
		Metric:   MetricLiveHoldSeconds,
		Quantile: 0.99,
		Max:      DefaultLiveHoldP99Max,
	})
}
