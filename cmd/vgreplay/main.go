// Command vgreplay re-runs the Voice Command Traffic Recognition
// sub-module over a capture file written by vgsim -dump (or any
// pcap.WriteCapture output), printing how many spikes were held,
// recognized as commands, and released — offline analysis of what the
// guard saw.
//
// Usage:
//
//	vgsim -days 1 -dump run.vgc
//	vgreplay -in run.vgc
//	vgreplay -in run.vgc -speaker ghm -ip 192.168.1.201
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"voiceguard/internal/cliutil"
	"voiceguard/internal/pcap"
	"voiceguard/internal/recognize"
	"voiceguard/internal/trace"
	"voiceguard/internal/trafficgen"
)

func main() {
	var (
		in        = flag.String("in", "", "capture file to replay (required)")
		speaker   = flag.String("speaker", "echo", "recognition procedure: echo|ghm")
		ip        = flag.String("ip", trafficgen.EchoIP, "the speaker's IP address in the capture")
		logLevel  = flag.String("log-level", "off", "structured log level: off|debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "structured log format: text|json")
		traceOut  = flag.String("trace-out", "", "write every recorded span to this JSONL file (one classify span per spike)")
	)
	flag.Parse()

	// Invalid flag values are usage errors: reject them up front with
	// usage and exit 2 (the vgproxy standard), before any work starts.
	if err := cliutil.FirstError(
		cliutil.NonEmpty("-in", *in),
		cliutil.OneOf("-speaker", *speaker, "echo", "ghm"),
	); err != nil {
		fmt.Fprintln(os.Stderr, "vgreplay:", err)
		flag.Usage()
		os.Exit(2)
	}

	closeTrace, err := trace.SetupFromFlags(trace.Default, *logLevel, *logFormat, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vgreplay:", err)
		os.Exit(2)
	}
	if err := run(*in, *speaker, *ip); err != nil {
		_ = closeTrace()
		fmt.Fprintln(os.Stderr, "vgreplay:", err)
		os.Exit(1)
	}
	_ = closeTrace()
}

func run(in, speaker, ip string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	packets, err := pcap.ReadCapture(f)
	if err != nil {
		return err
	}
	if len(packets) == 0 {
		return fmt.Errorf("capture %s is empty", in)
	}

	var rec *recognize.Recognizer
	switch speaker {
	case "echo":
		rec = recognize.NewEcho(ip)
	case "ghm":
		rec = recognize.NewGHM(ip)
	default:
		return fmt.Errorf("unknown speaker %q", speaker)
	}

	stats := recognize.Replay(rec, packets)
	fmt.Printf("replayed %d packets spanning %s from %s\n",
		stats.Packets, stats.Span.Round(time.Second), in)
	fmt.Printf("spikes held:        %d\n", stats.Holds)
	fmt.Printf("voice commands:     %d\n", stats.Commands)
	fmt.Printf("released non-voice: %d\n", stats.Releases)
	return nil
}
