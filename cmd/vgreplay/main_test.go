package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"voiceguard/internal/pcap"
	"voiceguard/internal/rng"
	"voiceguard/internal/trafficgen"
)

// writeTestCapture builds a small Echo capture on disk.
func writeTestCapture(t *testing.T) string {
	t.Helper()
	src := rng.New(1)
	echo := trafficgen.NewEcho(src)
	echo.AnomalyRate = 0
	start := time.Date(2023, 3, 1, 9, 0, 0, 0, time.UTC)
	boot, err := echo.Boot(start)
	if err != nil {
		t.Fatal(err)
	}
	capture := append(boot, echo.Invocation(start.Add(time.Minute), 1).All()...)

	path := filepath.Join(t.TempDir(), "test.vgc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pcap.WriteCapture(f, capture); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReplaysCapture(t *testing.T) {
	path := writeTestCapture(t)
	if err := run(path, "echo", trafficgen.EchoIP); err != nil {
		t.Fatal(err)
	}
}

func TestRunGHMProcedure(t *testing.T) {
	path := writeTestCapture(t)
	if err := run(path, "ghm", trafficgen.GHMIP); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "echo", trafficgen.EchoIP); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run("/nonexistent/file.vgc", "echo", trafficgen.EchoIP); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTestCapture(t)
	if err := run(path, "gramophone", trafficgen.EchoIP); err == nil {
		t.Fatal("unknown speaker accepted")
	}

	// Empty capture file.
	empty := filepath.Join(t.TempDir(), "empty.vgc")
	f, err := os.Create(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := pcap.WriteCapture(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := run(empty, "echo", trafficgen.EchoIP); err == nil {
		t.Fatal("empty capture accepted")
	}
}
