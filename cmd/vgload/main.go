// Command vgload is the wire-plane load generator: it drives N
// thousand concurrent emulated speaker sessions — TCP through a real
// LiveProxy or LiveGuard, plus the Google Home Mini UDP profile —
// with mixed hold/release/drop verdicts, a configurable
// decision-latency distribution, hold deadlines, and fault profiles,
// and reports session setup rate, p99 added latency against a
// no-proxy baseline, and the hold-memory ceiling under the global
// HoldBudget.
//
// Usage:
//
//	vgload -tcp-sessions 3000 -udp-sessions 2000 -budget-bytes 1048576
//	vgload -plane guard -tcp-sessions 200
//	vgload -tcp-sessions 64 -fault delay-spike -json wire.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"voiceguard/internal/cliutil"
	"voiceguard/internal/faults"
	"voiceguard/internal/wireload"
)

// config carries the parsed command-line flags through run.
type config struct {
	plane        string
	tcpSessions  int
	udpSessions  int
	idleGap      time.Duration
	burstBytes   int
	burstEvery   time.Duration
	baseline     int
	bursts       int
	decisionMean time.Duration
	decisionJit  time.Duration
	holdDeadline time.Duration
	failClosed   bool
	budgetBytes  int64
	sessionHold  int
	acceptShards int
	dropFrac     float64
	stallFrac    float64
	stallWindow  time.Duration
	fault        string
	seed         int64
	dialConc     int
	jsonOut      string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.plane, "plane", wireload.PlaneProxy, "wire plane under load: proxy|guard")
	flag.IntVar(&cfg.tcpSessions, "tcp-sessions", 256, "concurrent TCP speaker sessions")
	flag.IntVar(&cfg.udpSessions, "udp-sessions", 0, "concurrent UDP (GHM-profile) speaker sockets (proxy plane only)")
	flag.DurationVar(&cfg.idleGap, "idle-gap", 50*time.Millisecond, "burst separator gap")
	flag.IntVar(&cfg.burstBytes, "burst-bytes", 2048, "payload bytes per TCP burst")
	flag.DurationVar(&cfg.burstEvery, "burst-every", 150*time.Millisecond, "pause between a session's bursts")
	flag.IntVar(&cfg.baseline, "baseline-bursts", 3, "per-session no-proxy baseline bursts (0 skips the baseline)")
	flag.IntVar(&cfg.bursts, "measure-bursts", 3, "per-session proxied bursts sampled for latency")
	flag.DurationVar(&cfg.decisionMean, "decision-mean", 25*time.Millisecond, "mean decision latency")
	flag.DurationVar(&cfg.decisionJit, "decision-jitter", 10*time.Millisecond, "uniform +/- jitter around the decision mean")
	flag.DurationVar(&cfg.holdDeadline, "hold-deadline", 400*time.Millisecond, "transport hold deadline (0 disables)")
	flag.BoolVar(&cfg.failClosed, "fail-closed", false, "resolve expired holds by dropping instead of releasing")
	flag.Int64Var(&cfg.budgetBytes, "budget-bytes", 1<<20, "global hold-memory budget in bytes (0 = unlimited)")
	flag.IntVar(&cfg.sessionHold, "session-hold-bytes", 0, "per-session hold cap in bytes (0 = transport default)")
	flag.IntVar(&cfg.acceptShards, "accept-shards", 0, "concurrent accept loops (0 = transport default)")
	flag.Float64Var(&cfg.dropFrac, "drop-frac", 0.15, "fraction of sessions with malicious (drop) verdicts")
	flag.Float64Var(&cfg.stallFrac, "stall-frac", 0.25, "fraction of sessions whose decisions wedge")
	flag.DurationVar(&cfg.stallWindow, "stall-window", 1500*time.Millisecond, "stall-flood phase duration (0 skips)")
	flag.StringVar(&cfg.fault, "fault", "none", "fault profile on the decision path: "+faultNames())
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for class assignment, jitter, and fault draws")
	flag.IntVar(&cfg.dialConc, "dial-concurrency", 128, "max in-flight session dials during ramp")
	flag.StringVar(&cfg.jsonOut, "json", "", "write the outcome as JSON to this file")
	flag.Parse()

	if err := validate(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vgload:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vgload:", err)
		os.Exit(1)
	}
}

func faultNames() string {
	names := "none"
	for _, n := range faults.ProfileNames() {
		if n != "none" {
			names += "|" + n
		}
	}
	return names
}

// validate rejects bad flag combinations before any socket opens.
func validate(cfg config) error {
	if err := cliutil.FirstError(
		cliutil.OneOf("plane", cfg.plane, wireload.PlaneProxy, wireload.PlaneGuard),
		cliutil.OneOf("fault", cfg.fault, append([]string{"none"}, faults.ProfileNames()...)...),
		cliutil.Positive("burst-bytes", cfg.burstBytes),
		cliutil.Positive("measure-bursts", cfg.bursts),
		cliutil.Positive("dial-concurrency", cfg.dialConc),
	); err != nil {
		return err
	}
	if cfg.tcpSessions <= 0 && cfg.udpSessions <= 0 {
		return fmt.Errorf("at least one of -tcp-sessions or -udp-sessions must be positive")
	}
	if cfg.dropFrac < 0 || cfg.dropFrac > 1 || cfg.stallFrac < 0 || cfg.stallFrac > 1 ||
		cfg.dropFrac+cfg.stallFrac > 1 {
		return fmt.Errorf("-drop-frac and -stall-frac must be in [0,1] and sum to at most 1")
	}
	if need, limit, ok := fdBudget(cfg); ok && need > limit {
		return fmt.Errorf("session mix needs ~%d file descriptors but the soft limit is %d; "+
			"raise it (ulimit -n) or shift sessions to UDP (2 FDs each vs 4 for TCP)", need, limit)
	}
	return nil
}

// fdBudget estimates the run's descriptor demand: a TCP session costs
// four (client conn, proxy's two sides, sink conn), a UDP session two
// (client socket, forwarder peer socket), plus slack for listeners,
// baseline churn, and the runtime.
func fdBudget(cfg config) (need, limit uint64, ok bool) {
	limit, ok = fdSoftLimit()
	if !ok {
		return 0, 0, false
	}
	need = 4*uint64(cfg.tcpSessions) + 2*uint64(cfg.udpSessions) + 256
	return need, limit, true
}

func run(cfg config) error {
	out, err := wireload.Run(wireload.Config{
		Plane:            cfg.plane,
		TCPSessions:      cfg.tcpSessions,
		UDPSessions:      cfg.udpSessions,
		IdleGap:          cfg.idleGap,
		BurstBytes:       cfg.burstBytes,
		BurstEvery:       cfg.burstEvery,
		BaselineBursts:   cfg.baseline,
		MeasureBursts:    cfg.bursts,
		DecisionMean:     cfg.decisionMean,
		DecisionJitter:   cfg.decisionJit,
		HoldDeadline:     cfg.holdDeadline,
		FailClosed:       cfg.failClosed,
		BudgetBytes:      cfg.budgetBytes,
		SessionHoldBytes: cfg.sessionHold,
		AcceptShards:     cfg.acceptShards,
		DropFrac:         cfg.dropFrac,
		StallFrac:        cfg.stallFrac,
		StallWindow:      cfg.stallWindow,
		FaultProfile:     cfg.fault,
		Seed:             cfg.seed,
		DialConcurrency:  cfg.dialConc,
	})
	if err != nil {
		return err
	}
	fmt.Print(out.Text())
	if cfg.jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
