package main

import "testing"

func base() config {
	return config{
		plane:       "proxy",
		tcpSessions: 16,
		burstBytes:  1024,
		bursts:      2,
		dialConc:    8,
		fault:       "none",
		dropFrac:    0.1,
		stallFrac:   0.2,
	}
}

func TestValidate(t *testing.T) {
	if err := validate(base()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*config)
	}{
		{"bad plane", func(c *config) { c.plane = "warp" }},
		{"bad fault", func(c *config) { c.fault = "gremlins" }},
		{"no sessions", func(c *config) { c.tcpSessions = 0; c.udpSessions = 0 }},
		{"negative drop frac", func(c *config) { c.dropFrac = -0.1 }},
		{"fracs exceed one", func(c *config) { c.dropFrac = 0.6; c.stallFrac = 0.6 }},
		{"zero bursts", func(c *config) { c.bursts = 0 }},
		{"fd exhaustion", func(c *config) { c.tcpSessions = 1 << 30 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if err := validate(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestFDBudget(t *testing.T) {
	cfg := base()
	cfg.tcpSessions, cfg.udpSessions = 3000, 2000
	need, _, ok := fdBudget(cfg)
	if !ok {
		t.Skip("no rlimit on this platform")
	}
	if want := uint64(4*3000 + 2*2000 + 256); need != want {
		t.Fatalf("fd need = %d, want %d", need, want)
	}
}
