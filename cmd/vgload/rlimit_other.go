//go:build !unix

package main

// fdSoftLimit is unavailable off unix; the preflight check is skipped.
func fdSoftLimit() (uint64, bool) { return 0, false }
