//go:build unix

package main

import "syscall"

// fdSoftLimit reads the process's soft open-files limit, so an
// oversized session mix fails with a clear message instead of
// mid-ramp EMFILE noise.
func fdSoftLimit() (uint64, bool) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0, false
	}
	return uint64(rl.Cur), true
}
