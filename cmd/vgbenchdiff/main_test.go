package main

import (
	"strings"
	"testing"
)

func file(recs ...benchRecord) *benchFile {
	return &benchFile{GoVersion: "go1.22", Experiments: recs}
}

func rec(name string, ns int64, metrics map[string]float64) benchRecord {
	return benchRecord{Name: name, NsPerOp: ns, AllocsOp: 100, BytesOp: 1000, Metrics: metrics}
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := file(rec("table1", 1000, map[string]float64{"pct_accuracy": 99.5}))
	if regs := Compare(base, base, 3); len(regs) != 0 {
		t.Fatalf("identical artifacts regressed: %v", regs)
	}
}

func TestCompareQualityMetricExactMatch(t *testing.T) {
	base := file(rec("table1", 1000, map[string]float64{"pct_accuracy": 99.5}))
	// The tiniest drift in a pct_* metric must fail, even within any
	// numeric tolerance.
	cur := file(rec("table1", 1000, map[string]float64{"pct_accuracy": 99.4999}))
	regs := Compare(base, cur, 3)
	if len(regs) != 1 || !strings.Contains(regs[0], "pct_accuracy") {
		t.Fatalf("quality drift not caught: %v", regs)
	}
	// An exactly equal value passes; improvement also fails exactness —
	// a changed deterministic output means the simulation changed.
	cur = file(rec("table1", 1000, map[string]float64{"pct_accuracy": 99.6}))
	if regs := Compare(base, cur, 3); len(regs) != 1 {
		t.Fatalf("quality improvement should still flag exact mismatch: %v", regs)
	}
}

func TestCompareTimingTolerance(t *testing.T) {
	base := file(rec("table1", 1000, nil))
	within := file(rec("table1", 2999, nil))
	if regs := Compare(base, within, 3); len(regs) != 0 {
		t.Fatalf("timing within 3x regressed: %v", regs)
	}
	over := file(rec("table1", 3001, nil))
	regs := Compare(base, over, 3)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns_per_op") {
		t.Fatalf("timing over 3x not caught: %v", regs)
	}
}

func TestCompareRateMetric(t *testing.T) {
	base := file(rec("homeday", 1000, map[string]float64{"home_days_per_sec": 900}))
	// A rate within baseline/tolerance passes.
	cur := file(rec("homeday", 1000, map[string]float64{"home_days_per_sec": 301}))
	if regs := Compare(base, cur, 3); len(regs) != 0 {
		t.Fatalf("rate within band regressed: %v", regs)
	}
	// Below baseline/tolerance fails.
	cur = file(rec("homeday", 1000, map[string]float64{"home_days_per_sec": 299}))
	regs := Compare(base, cur, 3)
	if len(regs) != 1 || !strings.Contains(regs[0], "home_days_per_sec") {
		t.Fatalf("rate collapse not caught: %v", regs)
	}
	// Faster than baseline always passes.
	cur = file(rec("homeday", 1000, map[string]float64{"home_days_per_sec": 5000}))
	if regs := Compare(base, cur, 3); len(regs) != 0 {
		t.Fatalf("rate improvement regressed: %v", regs)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := file(benchRecord{Name: "table1", NsPerOp: 1000, AllocsOp: 100, BytesOp: 1000})
	cur := file(benchRecord{Name: "table1", NsPerOp: 1000, AllocsOp: 500, BytesOp: 1000})
	regs := Compare(base, cur, 3)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs_per_op") {
		t.Fatalf("alloc regression not caught: %v", regs)
	}
}

func TestCompareMissingExperimentFails(t *testing.T) {
	base := file(rec("table1", 1000, nil), rec("faults", 2000, nil))
	cur := file(rec("table1", 1000, nil))
	regs := Compare(base, cur, 3)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing experiment not caught: %v", regs)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := file(rec("table1", 1000, map[string]float64{"pct_accuracy": 99.5}))
	cur := file(rec("table1", 1000, nil))
	regs := Compare(base, cur, 3)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing metric not caught: %v", regs)
	}
}

func TestCompareNewExperimentPasses(t *testing.T) {
	base := file(rec("table1", 1000, nil))
	cur := file(rec("table1", 1000, nil), rec("brand-new", 9999, nil))
	if regs := Compare(base, cur, 3); len(regs) != 0 {
		t.Fatalf("new experiment in current flagged: %v", regs)
	}
}
