// Command vgbenchdiff compares two vgbench -json artifacts and fails
// on regression, making a committed baseline enforceable in CI.
//
// Quality metrics (pct_* fields) are deterministic for a fixed seed,
// so any drift at all is a regression: they must match the baseline
// bit for bit. Timing fields (ns_per_op, allocs_per_op, bytes_per_op)
// and throughput rates (*_per_sec metrics) vary across machines and
// runs, so they are held to a tolerance band instead: a timing field
// regresses when it exceeds baseline x tolerance, a rate when it
// falls below baseline / tolerance.
//
// Usage:
//
//	vgbenchdiff -baseline BENCH_v0.json -current bench.json
//	vgbenchdiff -baseline BENCH_v0.json -current bench.json -timing-tolerance 4
//
// Exit status: 0 when current is no worse than baseline, 1 on any
// regression (or on an experiment missing from current), 2 on usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// benchFile mirrors vgbench's -json payload.
type benchFile struct {
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Workers     int           `json:"workers"`
	Experiments []benchRecord `json:"experiments"`
}

type benchRecord struct {
	Name     string             `json:"name"`
	NsPerOp  int64              `json:"ns_per_op"`
	AllocsOp uint64             `json:"allocs_per_op"`
	BytesOp  uint64             `json:"bytes_per_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline artifact (vgbench -json output)")
		currentPath  = flag.String("current", "", "freshly generated artifact to compare against the baseline")
		tolerance    = flag.Float64("timing-tolerance", 3.0, "allowed multiplier on timing fields and divisor on *_per_sec rates")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" || *tolerance < 1 {
		fmt.Fprintln(os.Stderr, "vgbenchdiff: -baseline and -current are required; -timing-tolerance must be >= 1")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := readBenchFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vgbenchdiff:", err)
		os.Exit(2)
	}
	current, err := readBenchFile(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vgbenchdiff:", err)
		os.Exit(2)
	}

	regressions := Compare(baseline, current, *tolerance)
	if baseline.GoVersion != current.GoVersion {
		fmt.Printf("note: go version changed (%s -> %s)\n", baseline.GoVersion, current.GoVersion)
	}
	if len(regressions) == 0 {
		fmt.Printf("ok: %d experiments within tolerance %.1fx of %s\n",
			len(baseline.Experiments), *tolerance, *baselinePath)
		return
	}
	for _, r := range regressions {
		fmt.Printf("REGRESSION %s\n", r)
	}
	fmt.Printf("%d regressions against %s\n", len(regressions), *baselinePath)
	os.Exit(1)
}

func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Compare returns a description of every regression of current
// against baseline. Experiments present only in current are new and
// pass; experiments missing from current are themselves regressions
// (the gate lost coverage).
func Compare(baseline, current *benchFile, tolerance float64) []string {
	cur := make(map[string]benchRecord, len(current.Experiments))
	for _, r := range current.Experiments {
		cur[r.Name] = r
	}
	var out []string
	for _, base := range baseline.Experiments {
		now, ok := cur[base.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: experiment missing from current artifact", base.Name))
			continue
		}
		out = append(out, compareRecord(base, now, tolerance)...)
	}
	return out
}

// compareRecord checks one experiment: exact-match pct_* metrics,
// tolerance-banded timing fields and rates.
func compareRecord(base, now benchRecord, tolerance float64) []string {
	var out []string
	if now.NsPerOp > int64(float64(base.NsPerOp)*tolerance) {
		out = append(out, fmt.Sprintf("%s: ns_per_op %d exceeds baseline %d x %.1f",
			base.Name, now.NsPerOp, base.NsPerOp, tolerance))
	}
	if now.AllocsOp > uint64(float64(base.AllocsOp)*tolerance) {
		out = append(out, fmt.Sprintf("%s: allocs_per_op %d exceeds baseline %d x %.1f",
			base.Name, now.AllocsOp, base.AllocsOp, tolerance))
	}
	if now.BytesOp > uint64(float64(base.BytesOp)*tolerance) {
		out = append(out, fmt.Sprintf("%s: bytes_per_op %d exceeds baseline %d x %.1f",
			base.Name, now.BytesOp, base.BytesOp, tolerance))
	}

	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Metrics[name]
		got, ok := now.Metrics[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: metric %s missing from current artifact", base.Name, name))
			continue
		}
		switch {
		case strings.HasPrefix(name, "pct_"):
			// Quality metrics are seed-deterministic: exact match.
			if got != want {
				out = append(out, fmt.Sprintf("%s: %s = %v, baseline %v (quality metrics must match exactly)",
					base.Name, name, got, want))
			}
		case strings.HasSuffix(name, "_per_sec"):
			// Rates: higher is better; regression below base/tolerance.
			if got < want/tolerance {
				out = append(out, fmt.Sprintf("%s: %s = %.1f below baseline %.1f / %.1f",
					base.Name, name, got, want, tolerance))
			}
		default:
			// Other recorded values: lower is better (durations,
			// allocation counts); same band as the timing fields.
			if got > want*tolerance {
				out = append(out, fmt.Sprintf("%s: %s = %v exceeds baseline %v x %.1f",
					base.Name, name, got, want, tolerance))
			}
		}
	}
	return out
}
