package main

import (
	"path/filepath"
	"testing"
)

// TestRunEveryExperiment exercises each experiment once with reduced
// workloads — the end-to-end check that every artifact still
// regenerates.
func TestRunEveryExperiment(t *testing.T) {
	for _, exp := range []string{
		"table1", "table2", "table3", "table4",
		"fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"corpus", "attacks", "robustness", "sensitivity", "faults", "homeday", "fleet",
	} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, 1 /* seed */, 1 /* day */, 30 /* invocations */, 15 /* queries */, 6 /* homes */, 16 /* wireTCP */, 0 /* wireUDP */, "drop20" /* fault */); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Fig. 4 runs on real sockets with real holds; keep it out of -short.
func TestRunFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket holds")
	}
	if err := run("fig4", 1, 1, 10, 5, 6, 16, 0, "all"); err != nil {
		t.Fatal(err)
	}
}

// The wire experiment drives real sockets through a live proxy; like
// fig4 it stays out of -short.
func TestRunWire(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load harness")
	}
	if err := run("wire", 1, 1, 10, 5, 6, 24, 8, "all"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 1, 10, 5, 6, 16, 0, "all"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWithCSVOutput(t *testing.T) {
	dir := t.TempDir()
	csvInto = dir
	defer func() { csvInto = "" }()
	if err := run("fig10", 1, 1, 10, 5, 6, 16, 0, "all"); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig10_case*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Fatalf("CSV files = %d, want 4", len(matches))
	}
}
