// Command vgbench regenerates every table and figure of the paper's
// evaluation from the simulation. Each experiment prints in roughly
// the layout the paper uses, so results can be compared side by side
// (see EXPERIMENTS.md for the recorded comparison).
//
// Usage:
//
//	vgbench -exp all
//	vgbench -exp table2 -seed 7
//	vgbench -exp fig10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"voiceguard/internal/cliutil"
	"voiceguard/internal/corpus"
	"voiceguard/internal/faults"
	"voiceguard/internal/floorplan"
	"voiceguard/internal/metrics"
	"voiceguard/internal/netem"
	"voiceguard/internal/obs"
	"voiceguard/internal/parallel"
	"voiceguard/internal/radio"
	"voiceguard/internal/report"
	"voiceguard/internal/scenario"
	"voiceguard/internal/stats"
	"voiceguard/internal/trace"
	"voiceguard/internal/wireload"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig3|fig4|fig6|fig7|fig8|fig9|fig10|corpus|faults|fleet|all")
		seed        = flag.Int64("seed", 1, "simulation seed")
		fault       = flag.String("fault", "all", "fault profile for -exp faults: all|"+strings.Join(faults.ProfileNames(), "|"))
		days        = flag.Int("days", 7, "days per protection experiment")
		homes       = flag.Int("homes", 64, "homes for the multi-tenant fleet experiment")
		invocations = flag.Int("invocations", 134, "invocations for the recognition study")
		queries     = flag.Int("queries", 100, "invocations per delay study")
		wireTCP     = flag.Int("wire-tcp", 96, "TCP sessions for the wire-plane load experiment")
		wireUDP     = flag.Int("wire-udp", 32, "UDP sessions for the wire-plane load experiment")
		csvDir      = flag.String("csv", "", "also write figure data as CSV files into this directory")
		logLevel    = flag.String("log-level", "off", "structured log level: off|debug|info|warn|error")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
		traceOut    = flag.String("trace-out", "", "write every recorded span to this JSONL file")
		jsonOut     = flag.String("json", "", "write per-experiment wall time, allocations, and pct_* quality metrics to this JSON file")
		metricsOut  = flag.String("metrics-out", "", "write the labeled metrics snapshot (JSON envelope with bucket bounds) to this file")
		sloOut      = flag.String("slo-out", "", "write the SLO evaluation report to this file")
	)
	flag.Parse()

	// Invalid flag values are usage errors: reject them up front with
	// usage and exit 2 (the vgproxy standard), before any work starts.
	if err := cliutil.FirstError(
		cliutil.OneOf("-exp", *exp, append(append([]string{}, experimentOrder...), "all")...),
		cliutil.OneOf("-fault", *fault, append([]string{"all"}, faults.ProfileNames()...)...),
		cliutil.Positive("-days", *days),
		cliutil.Positive("-homes", *homes),
		cliutil.Positive("-invocations", *invocations),
		cliutil.Positive("-queries", *queries),
		cliutil.Positive("-wire-tcp", *wireTCP),
	); err != nil {
		fmt.Fprintln(os.Stderr, "vgbench:", err)
		flag.Usage()
		os.Exit(2)
	}

	closeTrace, err := trace.SetupFromFlags(trace.Default, *logLevel, *logFormat, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vgbench:", err)
		os.Exit(2)
	}
	defer func() { _ = closeTrace() }()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vgbench:", err)
			os.Exit(1)
		}
	}
	csvInto = *csvDir
	if err := run(*exp, *seed, *days, *invocations, *queries, *homes, *wireTCP, *wireUDP, *fault); err != nil {
		fmt.Fprintln(os.Stderr, "vgbench:", err)
		os.Exit(1)
	}
	// The metrics table makes every bench run double as regression
	// evidence: counter and latency drift shows up in the diff. The
	// snapshot is taken once so the printed table, the SLO report, and
	// the -metrics-out/-slo-out artifacts agree.
	snap := metrics.Default.Snapshot()
	results := obs.Evaluate(snap, obs.DefaultObjectives(), nil)
	fmt.Println("\n== slo ==")
	_ = obs.WriteReport(os.Stdout, results)
	fmt.Println("\n== metrics ==")
	_ = metrics.WriteTable(os.Stdout, snap)

	if err := writeExitArtifacts(*metricsOut, *sloOut, snap, results); err != nil {
		fmt.Fprintln(os.Stderr, "vgbench:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "vgbench:", err)
			os.Exit(1)
		}
	}
}

// writeExitArtifacts persists the labeled snapshot and the SLO report
// when the corresponding flags are set.
func writeExitArtifacts(metricsOut, sloOut string, snap metrics.Snapshot, results []obs.SLOResult) error {
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := metrics.WriteJSON(f, snap); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if sloOut != "" {
		f, err := os.Create(sloOut)
		if err != nil {
			return err
		}
		if err := obs.WriteReport(f, results); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// benchRecord is one experiment's entry in the -json output: wall
// time, allocation counts read from the runtime (process-wide deltas,
// like a benchmark's allocs/op at one iteration), and the same pct_*
// quality metrics the bench_test.go benchmarks report.
type benchRecord struct {
	Name     string             `json:"name"`
	NsPerOp  int64              `json:"ns_per_op"`
	AllocsOp uint64             `json:"allocs_per_op"`
	BytesOp  uint64             `json:"bytes_per_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

var (
	benchRecords  []benchRecord
	currentRecord *benchRecord
)

// recordMetric attaches a pct_* quality metric to the experiment
// currently being timed. Outside a timed experiment it is a no-op.
func recordMetric(name string, value float64) {
	if currentRecord == nil {
		return
	}
	if currentRecord.Metrics == nil {
		currentRecord.Metrics = make(map[string]float64)
	}
	currentRecord.Metrics[name] = value
}

// timed runs one experiment while recording wall time and allocation
// deltas for the -json artifact.
func timed(name string, fn func() error) error {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rec := benchRecord{Name: name}
	currentRecord = &rec
	start := time.Now()
	err := fn()
	rec.NsPerOp = time.Since(start).Nanoseconds()
	currentRecord = nil
	runtime.ReadMemStats(&after)
	rec.AllocsOp = after.Mallocs - before.Mallocs
	rec.BytesOp = after.TotalAlloc - before.TotalAlloc
	if err == nil {
		benchRecords = append(benchRecords, rec)
	}
	return err
}

func writeBenchJSON(path string) error {
	payload := struct {
		GoVersion   string        `json:"go_version"`
		GOMAXPROCS  int           `json:"gomaxprocs"`
		Workers     int           `json:"workers"`
		Experiments []benchRecord `json:"experiments"`
	}{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     parallel.Workers(),
		Experiments: benchRecords,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// csvInto, when non-empty, is the directory figure CSVs are written
// into alongside the text output.
var csvInto string

// writeCSV writes one CSV artifact when -csv is set.
func writeCSV(name string, write func(w *os.File) error) error {
	if csvInto == "" {
		return nil
	}
	f, err := os.Create(csvInto + "/" + name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// experimentOrder lists every experiment in the order "-exp all" runs
// them; it doubles as the valid value set for -exp flag validation.
var experimentOrder = []string{
	"table1", "table2", "table3", "table4",
	"fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "corpus",
	"attacks", "robustness", "sensitivity", "faults", "homeday", "fleet",
	"wire",
}

func run(exp string, seed int64, days, invocations, queries, homes, wireTCP, wireUDP int, fault string) error {
	experiments := map[string]func() error{
		"table1": func() error { return table1(invocations, seed) },
		"table2": func() error {
			return rssiTable("Table II (two-floor house)", floorplan.House(), twoPhones(), days, seed)
		},
		"table3": func() error {
			return rssiTable("Table III (two-bedroom apartment)", floorplan.Apartment(), twoPhones(), days, seed)
		},
		"table4":      func() error { return rssiTable("Table IV (office)", floorplan.Office(), watchOnly(), days, seed) },
		"fig3":        func() error { return fig3(seed) },
		"fig4":        fig4,
		"fig6":        func() error { return fig67(seed, queries, true) },
		"fig7":        func() error { return fig67(seed, queries, false) },
		"fig8":        func() error { return maps("Fig. 8", "A", seed) },
		"fig9":        func() error { return maps("Fig. 9", "B", seed) },
		"fig10":       func() error { return fig10(seed) },
		"corpus":      func() error { return corpusAnalysis(seed, queries) },
		"attacks":     func() error { return attackStudy(seed) },
		"robustness":  func() error { return robustness(seed) },
		"sensitivity": func() error { return sensitivity(days, seed) },
		"faults":      func() error { return faultStudy(days, seed, fault) },
		"homeday":     func() error { return homeDayThroughput(days, seed) },
		"fleet":       func() error { return fleetThroughput(homes, days, seed) },
		"wire":        func() error { return wireLoad(wireTCP, wireUDP, seed) },
	}

	if exp == "all" {
		for _, name := range experimentOrder {
			if err := timed(name, experiments[name]); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	fn, ok := experiments[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return timed(exp, fn)
}

func twoPhones() []scenario.DeviceSpec {
	return []scenario.DeviceSpec{
		{ID: "pixel5", Hardware: radio.Pixel5},
		{ID: "pixel4a", Hardware: radio.Pixel4a},
	}
}

func watchOnly() []scenario.DeviceSpec {
	return []scenario.DeviceSpec{{ID: "watch4", Hardware: radio.GalaxyWatch4}}
}

func table1(invocations int, seed int64) error {
	res := scenario.TrafficRecognition(invocations, seed)
	recordMetric("pct_accuracy", 100*res.Confusion.Accuracy())
	recordMetric("pct_precision", 100*res.Confusion.Precision())
	recordMetric("pct_recall", 100*res.Confusion.Recall())
	fmt.Print(report.Table1(res))
	return nil
}

// rssiTable runs the four columns of one of Tables II-IV. The columns
// are independent seeded runs sharing only the (read-safe) plan, so
// they fan out across the parallel worker pool; column order and
// values match the original serial loop.
func rssiTable(title string, plan *floorplan.Plan, devices []scenario.DeviceSpec, days int, seed int64) error {
	cols := []struct {
		speaker scenario.SpeakerKind
		spot    string
	}{
		{scenario.Echo, "A"}, {scenario.Echo, "B"},
		{scenario.GHM, "A"}, {scenario.GHM, "B"},
	}
	columns, err := parallel.MapErr(len(cols), func(i int) (*scenario.Outcome, error) {
		return scenario.Run(scenario.Config{
			Plan:    plan,
			Spot:    cols[i].spot,
			Speaker: cols[i].speaker,
			Devices: devices,
			Days:    days,
			Seed:    seed,
		})
	})
	if err != nil {
		return err
	}
	var overall stats.Confusion
	for _, out := range columns {
		overall.Merge(out.Confusion)
	}
	recordMetric("pct_accuracy", 100*overall.Accuracy())
	recordMetric("pct_precision", 100*overall.Precision())
	recordMetric("pct_recall", 100*overall.Recall())
	fmt.Print(report.RSSITable(title, columns))
	return nil
}

func fig3(seed int64) error {
	fmt.Print(report.Fig3(scenario.Fig3Trace(seed)))
	return nil
}

func fig4() error {
	cases, err := scenario.HoldReleaseDrop(1500 * time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Print(report.Fig4(cases))
	return nil
}

func fig67(seed int64, queries int, caseSplit bool) error {
	studies, err := scenario.QueryDelayStudies([]scenario.SpeakerKind{scenario.Echo, scenario.GHM}, queries, seed)
	if err != nil {
		return err
	}
	echo, ghm := studies[0], studies[1]
	recordMetric("pct_echo_under2s", 100*echo.Under2s)
	recordMetric("pct_ghm_under2s", 100*ghm.Under2s)
	recordMetric("pct_no_delay", 100*float64(echo.CaseA)/float64(echo.CaseA+echo.CaseB))
	if caseSplit {
		fmt.Print(report.Fig6(studies))
		return nil
	}
	fmt.Print(report.Fig7(studies))
	if err := writeCSV("fig7_echo.csv", func(w *os.File) error { return report.WriteDelayCSV(w, echo) }); err != nil {
		return err
	}
	return writeCSV("fig7_ghm.csv", func(w *os.File) error { return report.WriteDelayCSV(w, ghm) })
}

// maps prints the RSSI map of each testbed for one deployment spot.
func maps(figure, spot string, seed int64) error {
	cases := []struct {
		label string
		plan  *floorplan.Plan
		dev   radio.Device
	}{
		{label: "two-floor house (Pixel 5)", plan: floorplan.House(), dev: radio.Pixel5},
		{label: "apartment (Pixel 5)", plan: floorplan.Apartment(), dev: radio.Pixel5},
		{label: "office (Galaxy Watch4)", plan: floorplan.Office(), dev: radio.GalaxyWatch4},
	}
	for i, c := range cases {
		entries, err := scenario.RSSIMap(c.plan, spot, c.dev, seed+int64(i))
		if err != nil {
			return err
		}
		threshold, err := scenario.MapThreshold(c.plan, spot, c.dev, seed+int64(i))
		if err != nil {
			return err
		}
		fmt.Print(report.Fig8(fmt.Sprintf("%s: %s, speaker spot %s", figure, c.label, spot), entries, threshold))
		fmt.Println()
		name := fmt.Sprintf("%s_%s_spot%s.csv", map[string]string{"Fig. 8": "fig8", "Fig. 9": "fig9"}[figure], c.plan.Name, spot)
		if err := writeCSV(name, func(w *os.File) error { return report.WriteRSSIMapCSV(w, entries) }); err != nil {
			return err
		}
	}
	return nil
}

func fig10(seed int64) error {
	studies, err := scenario.Fig10Cases(seed)
	if err != nil {
		return err
	}
	var acc float64
	for _, study := range studies {
		acc += study.Accuracy
	}
	recordMetric("pct_accuracy", 100*acc/float64(len(studies)))
	fmt.Print(report.Fig10(studies))
	for i, study := range studies {
		name := fmt.Sprintf("fig10_case%d.csv", i+1)
		if err := writeCSV(name, func(w *os.File) error { return report.WriteTracePointsCSV(w, study) }); err != nil {
			return err
		}
	}
	return nil
}

func attackStudy(seed int64) error {
	outcomes, err := scenario.AttackVectorStudy(27, seed)
	if err != nil {
		return err
	}
	fmt.Print(report.AttackTable(outcomes))
	return nil
}

func robustness(seed int64) error {
	points := scenario.RecognitionUnderImpairment(100, []netem.Config{
		{},
		{LossRate: 0.01},
		{LossRate: 0.05},
		{LossRate: 0.10},
		{LossRate: 0.30},
		{DuplicateRate: 0.10, JitterMax: 20 * time.Millisecond},
		{LossRate: 0.05, DuplicateRate: 0.05, JitterMax: 50 * time.Millisecond, SwapRate: 0.05},
	}, seed)
	fmt.Print(report.RobustnessTable(points))
	return nil
}

func sensitivity(days int, seed int64) error {
	points, err := scenario.NoiseSensitivity([]float64{0.5, 1, 2, 4, 8}, days, seed)
	if err != nil {
		return err
	}
	fmt.Print(report.SensitivityTable(points))
	return nil
}

// faultStudy re-runs the protection protocol under push-channel fault
// profiles. profile "all" sweeps the standard set; naming one profile
// runs just the clean baseline and that profile (the bench-smoke
// configuration).
func faultStudy(days int, seed int64, profile string) error {
	profiles := faults.Profiles()
	if profile != "all" {
		p, ok := faults.ByName(profile)
		if !ok {
			return fmt.Errorf("unknown fault profile %q", profile)
		}
		profiles = []faults.Profile{faults.None(), p}
	}
	points, err := scenario.FaultStudy(scenario.FaultStudyConfig{
		Profiles: profiles,
		Days:     days,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	clean, worst := points[0].Confusion.Accuracy(), points[0].Confusion.Accuracy()
	for _, pt := range points[1:] {
		if a := pt.Confusion.Accuracy(); a < worst {
			worst = a
		}
	}
	recordMetric("pct_accuracy_clean", 100*clean)
	recordMetric("pct_accuracy_worst_profile", 100*worst)
	fmt.Print(report.FaultTable(points))
	return nil
}

// homeDayThroughput measures end-to-end simulator throughput: three
// same-seed protection runs of the house testbed back to back (the
// steady-state regime, with the deterministic memo layers warm after
// the first run), reported as simulated home-days per wall-clock
// second. The bench gate tracks home_days_per_sec for regressions.
func homeDayThroughput(days int, seed int64) error {
	const iterations = 3
	plan := floorplan.House()
	cfg := scenario.Config{
		Plan:    plan,
		Spot:    "A",
		Speaker: scenario.Echo,
		Devices: twoPhones(),
		Days:    days,
		Seed:    seed,
	}
	var last *scenario.Outcome
	start := time.Now()
	for i := 0; i < iterations; i++ {
		out, err := scenario.Run(cfg)
		if err != nil {
			return err
		}
		last = out
	}
	elapsed := time.Since(start)
	perSec := float64(days*iterations) / elapsed.Seconds()
	recordMetric("home_days_per_sec", perSec)
	recordMetric("pct_accuracy", 100*last.Confusion.Accuracy())
	fmt.Printf("== home-day throughput ==\n%d runs x %d days in %v: %.1f home-days/sec (accuracy %.1f%%)\n",
		iterations, days, elapsed.Round(time.Millisecond), perSec, 100*last.Confusion.Accuracy())
	return nil
}

// fleetThroughput runs the multi-tenant fleet engine — N heterogeneous
// homes as tenants of one sharded manager — and reports homes/sec.
// After the timed window, a deterministic sample of homes is re-run
// through plain sequential scenario.Run and compared deep-equal: the
// bit-identity spot check behind pct_verified_identical (a mismatch
// fails the experiment, and therefore the bench gate, loudly).
func fleetThroughput(homes, days int, seed int64) error {
	cfg := scenario.FleetConfig{Homes: homes, Days: days, Seed: seed}
	start := time.Now()
	out, err := scenario.Fleet(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	const verifySample = 2
	if err := scenario.FleetVerify(out, verifySample); err != nil {
		return err
	}
	recordMetric("homes_per_sec", float64(homes)/elapsed.Seconds())
	recordMetric("home_days_per_sec", float64(out.HomeDays)/elapsed.Seconds())
	recordMetric("pct_accuracy", 100*out.Confusion.Accuracy())
	recordMetric("pct_verified_identical", 100)
	fmt.Print(report.FleetTable(out, elapsed))
	return nil
}

// wireLoad is the wire-plane load experiment: a scaled-down vgload
// run (real LiveProxy, real sockets, TCP + UDP, stall flood against a
// deliberately small global budget) sized to finish in seconds so it
// can ride the bench gate. The structural outcomes — budget enforced,
// backpressure observed, every held burst resolved — are recorded as
// exact-match pct_* metrics; setup rate and latency ride the banded
// fields.
func wireLoad(tcp, udp int, seed int64) error {
	out, err := wireload.Run(wireload.Config{
		TCPSessions:     tcp,
		UDPSessions:     udp,
		IdleGap:         40 * time.Millisecond,
		BurstBytes:      2048,
		BurstEvery:      150 * time.Millisecond,
		BaselineBursts:  3,
		MeasureBursts:   4,
		DecisionMean:    25 * time.Millisecond,
		DecisionJitter:  10 * time.Millisecond,
		HoldDeadline:    400 * time.Millisecond,
		BudgetBytes:     128 << 10,
		DropFrac:        0.15,
		StallFrac:       0.25,
		StallWindow:     1200 * time.Millisecond,
		Seed:            seed,
		DialConcurrency: 64,
	})
	if err != nil {
		return err
	}
	recordMetric("sessions_per_sec", out.SessionsPerSec)
	// The added-latency guardrail is floored: sub-floor values are
	// scheduling noise, and a floor keeps the lower-is-better band
	// from failing on any positive measurement against a ~0 baseline.
	added := out.AddedP99Ms
	if added < 5 {
		added = 5
	}
	recordMetric("added_latency_p99_ms", added)
	peak := out.HoldBytesPeak
	if out.BudgetUsedPeak > peak {
		peak = out.BudgetUsedPeak
	}
	recordMetric("hold_bytes_peak", float64(peak))
	recordMetric("pct_hold_within_budget", bool100(out.WithinBudget))
	recordMetric("pct_backpressure_observed", bool100(out.Backpressured))
	resolvedPct := 0.0
	if out.BurstsHeld > 0 {
		resolvedPct = 100 * float64(out.BurstsReleased+out.BurstsDropped) / float64(out.BurstsHeld)
	}
	recordMetric("pct_bursts_resolved", resolvedPct)
	fmt.Print(out.Text())
	return nil
}

// bool100 renders a structural pass/fail as an exact-match metric.
func bool100(ok bool) float64 {
	if ok {
		return 100
	}
	return 0
}

func corpusAnalysis(seed int64, queries int) error {
	studies, err := scenario.QueryDelayStudies([]scenario.SpeakerKind{scenario.Echo, scenario.GHM}, queries, seed)
	if err != nil {
		return err
	}
	echo, ghm := studies[0], studies[1]
	analyses := []scenario.CorpusAnalysis{
		scenario.AnalyzeCorpus(corpus.Alexa(), time.Duration(echo.Summary.Mean*float64(time.Second))),
		scenario.AnalyzeCorpus(corpus.Google(), time.Duration(ghm.Summary.Mean*float64(time.Second))),
	}
	recordMetric("pct_no_delay", 100*analyses[0].NoDelayAtMean)
	fmt.Print(report.CorpusTable(analyses))
	return nil
}
