package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"voiceguard/internal/metrics"
	"voiceguard/internal/trace"
)

// Names used by the fixture registry. Constants, per the metriclabel
// rule.
const (
	topTestLatency  = "decision_latency_seconds"
	topTestVerdicts = "guard_verdicts"
	topTestDegraded = "guard_degraded_verdicts"
	topTestQueue    = "proxy_hold_queue_bytes"
)

// fixtureRegistry builds a registry with labeled series resembling a
// real guard: decision latency per home with an exemplar, verdict
// counters, and a hold-queue gauge.
func fixtureRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	lat := reg.HistogramVec(topTestLatency)
	h := lat.With(metrics.Labels{Home: "h1", Profile: "none"})
	for i := 0; i < 40; i++ {
		h.Observe(150 * time.Millisecond)
	}
	h.ObserveExemplar(6*time.Second, 42) // tail observation with exemplar
	verdicts := reg.CounterVec(topTestVerdicts)
	verdicts.With(metrics.Labels{Home: "h1", Verdict: "allow"}).Add(25)
	verdicts.With(metrics.Labels{Home: "h1", Verdict: "block"}).Add(9)
	reg.Gauge(topTestQueue).Set(2048)
	return reg
}

// fixtureMux serves the fixture registry and a flight recorder holding
// one dropped command, mirroring vgproxy's debug mux shape.
func fixtureMux(t *testing.T) *http.ServeMux {
	t.Helper()
	tr := trace.New(64)
	now := time.Now()
	tr.Record(trace.Span{
		Command: 42,
		Stage:   trace.StageDecision,
		Name:    "live_decide",
		Start:   now,
		End:     now.Add(120 * time.Millisecond),
		Attrs:   []trace.Attr{trace.String(trace.AttrOutcome, trace.OutcomeDrop)},
	})
	mux := http.NewServeMux()
	mux.Handle("/", metrics.Handler(fixtureRegistry()))
	mux.Handle("/debug/trace", trace.Handler(tr))
	return mux
}

func TestRunOnceRendersLiveFrame(t *testing.T) {
	srv := httptest.NewServer(fixtureMux(t))
	defer srv.Close()

	var buf bytes.Buffer
	err := run(config{addr: strings.TrimPrefix(srv.URL, "http://"), once: true, topK: 8}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`decision_latency_seconds{home="h1",profile="none"}`,
		`guard_verdicts{home="h1",verdict="allow"}`,
		"== slo ==",
		"exemplar cmd=42",
		"drop cmd=42 decision/live_decide",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once frame contains the ANSI clear sequence")
	}
}

func TestRunMultiFrameClearsScreen(t *testing.T) {
	srv := httptest.NewServer(fixtureMux(t))
	defer srv.Close()

	var buf bytes.Buffer
	err := run(config{
		addr:     strings.TrimPrefix(srv.URL, "http://"),
		frames:   2,
		interval: time.Millisecond,
		topK:     4,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\x1b[2J\x1b[H"); got != 2 {
		t.Fatalf("clear sequences = %d, want one per frame (2)", got)
	}
}

func TestRunSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteJSON(f, fixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(config{snapshot: path, topK: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `decision_latency_seconds{home="h1",profile="none"}`) {
		t.Fatalf("offline frame missing labeled series:\n%s", buf.String())
	}
}

// fleetFixtureRegistry builds a fleet-scale snapshot: 12 homes with
// distinct latency profiles, one of them degraded and slow.
func fleetFixtureRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	lat := reg.HistogramVec(topTestLatency)
	verdicts := reg.CounterVec(topTestVerdicts)
	for i := 0; i < 12; i++ {
		home := metrics.Labels{Home: homeID(i)}
		h := lat.With(home)
		for j := 0; j < 30; j++ {
			h.Observe(time.Duration(2+i) * time.Millisecond)
		}
		allow := home
		allow.Verdict = "allow"
		verdicts.With(allow).Add(20)
	}
	// home-11 is the outlier: slow tail and degraded verdicts.
	lat.With(metrics.Labels{Home: homeID(11)}).ObserveN(2*time.Second, 40)
	reg.CounterVec(topTestDegraded).With(metrics.Labels{Home: homeID(11)}).Add(5)
	return reg
}

func homeID(i int) string { return "home-" + string(rune('a'+i)) }

// TestRunSnapshotFleetFrame renders a multi-home snapshot and expects
// the fleet-aggregate section, worst home first — the fleet view that
// replaced vgtop's single-home assumption.
func TestRunSnapshotFleetFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteJSON(f, fleetFixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(config{snapshot: path, topK: 5}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	idx := strings.Index(out, "== fleet (12 homes, worst first) ==")
	if idx < 0 {
		t.Fatalf("fleet frame missing the fleet section:\n%s", out)
	}
	// The degraded outlier leads the ranking.
	section := out[idx:]
	first := strings.SplitN(section, "\n", 4)
	if len(first) < 3 || !strings.Contains(first[2], homeID(11)) {
		t.Fatalf("worst home not ranked first:\n%s", section)
	}
	if !strings.Contains(first[2], "5") {
		t.Fatalf("degraded count missing from the worst home's row:\n%s", first[2])
	}
}

func TestRunRejectsFlagCombos(t *testing.T) {
	if err := run(config{}, &bytes.Buffer{}); err == nil {
		t.Error("run accepted neither -addr nor -snapshot")
	}
	if err := run(config{addr: "x", snapshot: "y"}, &bytes.Buffer{}); err == nil {
		t.Error("run accepted both -addr and -snapshot")
	}
}

func TestRunSurfacesEndpointError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := run(config{addr: strings.TrimPrefix(srv.URL, "http://"), once: true}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("error = %v, want metrics endpoint status 500", err)
	}
}
