package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"voiceguard/internal/metrics"
	"voiceguard/internal/trace"
)

// Names used by the fixture registry. Constants, per the metriclabel
// rule.
const (
	topTestLatency  = "decision_latency_seconds"
	topTestVerdicts = "guard_verdicts"
	topTestQueue    = "proxy_hold_queue_bytes"
)

// fixtureRegistry builds a registry with labeled series resembling a
// real guard: decision latency per home with an exemplar, verdict
// counters, and a hold-queue gauge.
func fixtureRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	lat := reg.HistogramVec(topTestLatency)
	h := lat.With(metrics.Labels{Home: "h1", Profile: "none"})
	for i := 0; i < 40; i++ {
		h.Observe(150 * time.Millisecond)
	}
	h.ObserveExemplar(6*time.Second, 42) // tail observation with exemplar
	verdicts := reg.CounterVec(topTestVerdicts)
	verdicts.With(metrics.Labels{Home: "h1", Verdict: "allow"}).Add(25)
	verdicts.With(metrics.Labels{Home: "h1", Verdict: "block"}).Add(9)
	reg.Gauge(topTestQueue).Set(2048)
	return reg
}

// fixtureMux serves the fixture registry and a flight recorder holding
// one dropped command, mirroring vgproxy's debug mux shape.
func fixtureMux(t *testing.T) *http.ServeMux {
	t.Helper()
	tr := trace.New(64)
	now := time.Now()
	tr.Record(trace.Span{
		Command: 42,
		Stage:   trace.StageDecision,
		Name:    "live_decide",
		Start:   now,
		End:     now.Add(120 * time.Millisecond),
		Attrs:   []trace.Attr{trace.String(trace.AttrOutcome, trace.OutcomeDrop)},
	})
	mux := http.NewServeMux()
	mux.Handle("/", metrics.Handler(fixtureRegistry()))
	mux.Handle("/debug/trace", trace.Handler(tr))
	return mux
}

func TestRunOnceRendersLiveFrame(t *testing.T) {
	srv := httptest.NewServer(fixtureMux(t))
	defer srv.Close()

	var buf bytes.Buffer
	err := run(config{addr: strings.TrimPrefix(srv.URL, "http://"), once: true, topK: 8}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`decision_latency_seconds{home="h1",profile="none"}`,
		`guard_verdicts{home="h1",verdict="allow"}`,
		"== slo ==",
		"exemplar cmd=42",
		"drop cmd=42 decision/live_decide",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once frame contains the ANSI clear sequence")
	}
}

func TestRunMultiFrameClearsScreen(t *testing.T) {
	srv := httptest.NewServer(fixtureMux(t))
	defer srv.Close()

	var buf bytes.Buffer
	err := run(config{
		addr:     strings.TrimPrefix(srv.URL, "http://"),
		frames:   2,
		interval: time.Millisecond,
		topK:     4,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\x1b[2J\x1b[H"); got != 2 {
		t.Fatalf("clear sequences = %d, want one per frame (2)", got)
	}
}

func TestRunSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteJSON(f, fixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(config{snapshot: path, topK: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `decision_latency_seconds{home="h1",profile="none"}`) {
		t.Fatalf("offline frame missing labeled series:\n%s", buf.String())
	}
}

func TestRunRejectsFlagCombos(t *testing.T) {
	if err := run(config{}, &bytes.Buffer{}); err == nil {
		t.Error("run accepted neither -addr nor -snapshot")
	}
	if err := run(config{addr: "x", snapshot: "y"}, &bytes.Buffer{}); err == nil {
		t.Error("run accepted both -addr and -snapshot")
	}
}

func TestRunSurfacesEndpointError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := run(config{addr: strings.TrimPrefix(srv.URL, "http://"), once: true}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("error = %v, want metrics endpoint status 500", err)
	}
}
