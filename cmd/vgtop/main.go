// Command vgtop is a terminal live view over a running VoiceGuard
// process's observability plane: per-label top-K counter and gauge
// tables, sparkline latency histograms with trace exemplars, SLO
// status, and the recent anomaly tail (dropped commands pulled from
// the flight recorder).
//
// Snapshots carrying two or more labeled homes — a multi-tenant fleet
// process — additionally render a fleet-aggregate section ranking the
// worst homes first by decision p99 (degraded verdicts breaking
// ties), so a thousand-tenant frame leads with the tenants that need
// attention instead of interleaving every home's series.
//
// It polls the debug endpoint a guard exposes with -metrics-addr
// (vgproxy), or renders a single frame from a saved snapshot file
// (vgbench -metrics-out).
//
// Usage:
//
//	vgtop -addr 127.0.0.1:9090              # live, redrawn every 2s
//	vgtop -addr 127.0.0.1:9090 -once       # one frame, no redraw
//	vgtop -snapshot metrics.json           # offline frame from a file
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"voiceguard"
	"voiceguard/internal/metrics"
	"voiceguard/internal/obs"
	"voiceguard/internal/trace"
)

// config carries the parsed flags through run.
type config struct {
	addr     string
	snapshot string
	interval time.Duration
	frames   int
	topK     int
	once     bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "debug endpoint to poll (host:port of a -metrics-addr)")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "render one frame from a saved metrics snapshot JSON file instead of polling")
	flag.DurationVar(&cfg.interval, "interval", 2*time.Second, "poll interval between frames")
	flag.IntVar(&cfg.frames, "n", 0, "stop after this many frames (0 = until interrupted)")
	flag.IntVar(&cfg.topK, "k", 8, "rows per table section")
	flag.BoolVar(&cfg.once, "once", false, "render a single frame and exit (no screen clearing)")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vgtop:", err)
		os.Exit(1)
	}
}

func run(cfg config, w io.Writer) error {
	if (cfg.addr == "") == (cfg.snapshot == "") {
		return fmt.Errorf("exactly one of -addr or -snapshot is required")
	}
	if cfg.snapshot != "" {
		snap, err := readSnapshotFile(cfg.snapshot)
		if err != nil {
			return err
		}
		return renderFrame(w, snap, nil, cfg.topK)
	}

	base := cfg.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}
	frames := cfg.frames
	if cfg.once {
		frames = 1
	}
	for i := 0; frames <= 0 || i < frames; i++ {
		if i > 0 {
			time.Sleep(cfg.interval)
		}
		snap, err := fetchSnapshot(client, base)
		if err != nil {
			return err
		}
		// Anomaly fetch is best-effort: a guard built without the
		// flight recorder still gets the metric tables.
		anomalies, _ := fetchAnomalies(client, base)
		if !cfg.once {
			// ANSI clear + home: redraw in place like top(1).
			if _, err := fmt.Fprint(w, "\x1b[2J\x1b[H"); err != nil {
				return err
			}
		}
		if err := renderFrame(w, snap, anomalies, cfg.topK); err != nil {
			return err
		}
	}
	return nil
}

// renderFrame evaluates the wire-plane SLOs against the snapshot and
// writes one vgtop frame.
func renderFrame(w io.Writer, snap metrics.Snapshot, anomalies []string, topK int) error {
	return obs.WriteTop(w, obs.TopView{
		Snapshot:  snap,
		SLO:       obs.Evaluate(snap, voiceguard.LiveObjectives(), nil),
		Anomalies: anomalies,
		TopK:      topK,
	})
}

// readSnapshotFile loads a metrics snapshot JSON envelope (the /metrics
// ?format=json body, or a vgbench -metrics-out artifact).
func readSnapshotFile(path string) (metrics.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	return decodeSnapshot(data)
}

// fetchSnapshot polls the debug endpoint's JSON exposition.
func fetchSnapshot(client *http.Client, base string) (metrics.Snapshot, error) {
	resp, err := client.Get(base + "/?format=json")
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metrics.Snapshot{}, fmt.Errorf("metrics endpoint: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	return decodeSnapshot(data)
}

func decodeSnapshot(data []byte) (metrics.Snapshot, error) {
	var envelope metrics.SnapshotJSON
	if err := json.Unmarshal(data, &envelope); err != nil {
		return metrics.Snapshot{}, fmt.Errorf("invalid snapshot JSON: %w", err)
	}
	return envelope.Snapshot, nil
}

// fetchAnomalies pulls the flight-recorder JSONL export and returns a
// line per dropped command, oldest first, ready for the anomaly tail.
func fetchAnomalies(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/debug/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace endpoint: status %d", resp.StatusCode)
	}
	var out []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var span struct {
			Command uint64         `json:"command_id"`
			Stage   string         `json:"stage"`
			Name    string         `json:"name"`
			DurUS   int64          `json:"dur_us"`
			Attrs   map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal(line, &span); err != nil {
			continue
		}
		if outcome, _ := span.Attrs[trace.AttrOutcome].(string); outcome != trace.OutcomeDrop {
			continue
		}
		out = append(out, fmt.Sprintf("drop cmd=%d %s/%s after %s",
			span.Command, span.Stage, span.Name,
			(time.Duration(span.DurUS)*time.Microsecond).Round(time.Millisecond)))
	}
	return out, sc.Err()
}
