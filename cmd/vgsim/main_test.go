package main

import (
	"os"
	"path/filepath"
	"testing"

	"voiceguard/internal/pcap"
)

func TestRunAllTestbeds(t *testing.T) {
	tests := []struct {
		name    string
		testbed string
		speaker string
		devices string
	}{
		{name: "house echo", testbed: "house", speaker: "echo", devices: "pixel5,pixel4a"},
		{name: "apartment ghm", testbed: "apartment", speaker: "ghm", devices: "pixel5"},
		{name: "office watch", testbed: "office", speaker: "echo", devices: "watch4"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.testbed, "A", tt.speaker, 1, 1, tt.devices, false, true, ""); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("moonbase", "A", "echo", 1, 1, "pixel5", false, false, ""); err == nil {
		t.Fatal("unknown testbed accepted")
	}
	if err := run("house", "A", "cassette", 1, 1, "pixel5", false, false, ""); err == nil {
		t.Fatal("unknown speaker accepted")
	}
	if err := run("house", "A", "echo", 1, 1, "pixel5,telegraph", false, false, ""); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestRunDumpWritesReadableCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.vgc")
	if err := run("house", "A", "echo", 1, 2, "pixel5", false, false, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	packets, err := pcap.ReadCapture(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(packets) == 0 {
		t.Fatal("dumped capture is empty")
	}
}

func TestExportAndRunCustomPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := exportPlan("apartment", path); err != nil {
		t.Fatal(err)
	}
	if err := runCustomPlan(path, "A", "echo", 1, 5, "pixel5"); err != nil {
		t.Fatal(err)
	}
}

func TestCustomPlanErrors(t *testing.T) {
	if err := exportPlan("moonbase", filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("unknown testbed accepted")
	}
	if err := runCustomPlan("/nonexistent.json", "A", "echo", 1, 1, "pixel5"); err == nil {
		t.Fatal("missing plan file accepted")
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := exportPlan("house", path); err != nil {
		t.Fatal(err)
	}
	if err := runCustomPlan(path, "Z", "echo", 1, 1, "pixel5"); err == nil {
		t.Fatal("unknown spot accepted")
	}
	if err := runCustomPlan(path, "A", "cassette", 1, 1, "pixel5"); err == nil {
		t.Fatal("unknown speaker accepted")
	}
	if err := runCustomPlan(path, "A", "echo", 1, 1, "abacus"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestRunNoFloorTrackingAblation(t *testing.T) {
	if err := run("house", "A", "echo", 1, 3, "pixel5", true, false, ""); err != nil {
		t.Fatal(err)
	}
}
