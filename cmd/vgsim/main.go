// Command vgsim runs one configurable protection experiment and
// prints its metrics — the building block behind Tables II-IV.
//
// Usage:
//
//	vgsim -testbed house -spot A -speaker echo -days 7 -seed 1
//	vgsim -testbed office -speaker ghm -devices watch4
//	vgsim -testbed house -no-floor-tracking   # the §V-B2 ablation
//	vgsim -dump run.vgc                       # persist the guard's capture
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"voiceguard"
	"voiceguard/internal/cliutil"
	"voiceguard/internal/floorplan"
	"voiceguard/internal/metrics"
	"voiceguard/internal/obs"
	"voiceguard/internal/radio"
	"voiceguard/internal/scenario"
	"voiceguard/internal/trace"
)

func main() {
	var (
		testbed   = flag.String("testbed", "house", "testbed: house|apartment|office")
		spot      = flag.String("spot", "A", "speaker deployment location: A|B")
		speaker   = flag.String("speaker", "echo", "speaker: echo|ghm")
		days      = flag.Int("days", 7, "experiment days")
		seed      = flag.Int64("seed", 1, "simulation seed")
		devices   = flag.String("devices", "pixel5,pixel4a", "owner devices: comma list of pixel5|pixel4a|watch4")
		noTrack   = flag.Bool("no-floor-tracking", false, "disable the floor-level mechanism (ablation)")
		perDevice = flag.Bool("records", false, "print per-command records")
		dump      = flag.String("dump", "", "write the guard's packet capture to this file")
		planFile  = flag.String("plan", "", "run on a custom floor plan (JSON, see -export-plan)")
		exportTo  = flag.String("export-plan", "", "write the selected testbed's floor plan as JSON and exit")
		logLevel  = flag.String("log-level", "off", "structured log level: off|debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "structured log format: text|json")
		traceOut  = flag.String("trace-out", "", "write every recorded span to this JSONL file")
	)
	flag.Parse()

	// Invalid flag values are usage errors: reject them up front with
	// usage and exit 2 (the vgproxy standard), before any work starts.
	checks := []error{
		cliutil.OneOf("-testbed", *testbed, "house", "apartment", "office"),
		cliutil.OneOf("-speaker", *speaker, "echo", "ghm"),
		cliutil.EachOf("-devices", *devices, "pixel5", "pixel4a", "watch4"),
		cliutil.Positive("-days", *days),
	}
	if *planFile == "" {
		// Custom plans name their own spots; only the built-in
		// testbeds are limited to the paper's A/B deployments.
		checks = append(checks, cliutil.OneOf("-spot", *spot, "A", "B"))
	}
	if err := cliutil.FirstError(checks...); err != nil {
		fmt.Fprintln(os.Stderr, "vgsim:", err)
		flag.Usage()
		os.Exit(2)
	}

	closeTrace, err := trace.SetupFromFlags(trace.Default, *logLevel, *logFormat, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vgsim:", err)
		os.Exit(2)
	}
	defer func() { _ = closeTrace() }()

	if *exportTo != "" {
		if err := exportPlan(*testbed, *exportTo); err != nil {
			fmt.Fprintln(os.Stderr, "vgsim:", err)
			os.Exit(1)
		}
		fmt.Printf("floor plan written to %s\n", *exportTo)
		return
	}
	if *planFile != "" {
		if err := runCustomPlan(*planFile, *spot, *speaker, *days, *seed, *devices); err != nil {
			fmt.Fprintln(os.Stderr, "vgsim:", err)
			os.Exit(1)
		}
		printMetrics()
		return
	}
	if err := run(*testbed, *spot, *speaker, *days, *seed, *devices, *noTrack, *perDevice, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "vgsim:", err)
		os.Exit(1)
	}
	printMetrics()
}

// printMetrics dumps the SLO evaluation, the guard-wide metrics
// table, and the runtime telemetry at exit, turning every simulation
// run into instrumentation evidence. The SLO and metrics sections are
// deterministic for a seed (the table sorts by name, then label set);
// the runtime sample is taken afterwards so its run-to-run jitter
// stays out of the seed-stable sections.
func printMetrics() {
	snap := metrics.Default.Snapshot()
	fmt.Println("\n== slo ==")
	_ = obs.WriteReport(os.Stdout, obs.Evaluate(snap, obs.DefaultObjectives(), nil))
	fmt.Println("\n== metrics ==")
	_ = metrics.WriteTable(os.Stdout, snap)
	obs.NewRuntime(nil).Collect()
	fmt.Println("\n== runtime ==")
	_ = obs.WriteRuntime(os.Stdout, metrics.Default.Snapshot())
}

// exportPlan dumps a built-in testbed in the custom-plan JSON schema.
func exportPlan(testbed, path string) error {
	var plan *floorplan.Plan
	switch testbed {
	case "house":
		plan = floorplan.House()
	case "apartment":
		plan = floorplan.Apartment()
	case "office":
		plan = floorplan.Office()
	default:
		return fmt.Errorf("unknown testbed %q", testbed)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := floorplan.ToJSON(f, plan); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// runCustomPlan runs the protection experiment on a user-provided
// floor plan.
func runCustomPlan(path, spot, speaker string, days int, seed int64, devices string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	plan, err := floorplan.FromJSON(f)
	_ = f.Close()
	if err != nil {
		return err
	}

	kind := scenario.Echo
	switch speaker {
	case "echo":
	case "ghm":
		kind = scenario.GHM
	default:
		return fmt.Errorf("unknown speaker %q", speaker)
	}
	var specs []scenario.DeviceSpec
	for _, name := range strings.Split(devices, ",") {
		switch strings.TrimSpace(name) {
		case "pixel5":
			specs = append(specs, scenario.DeviceSpec{ID: "pixel5", Hardware: radio.Pixel5})
		case "pixel4a":
			specs = append(specs, scenario.DeviceSpec{ID: "pixel4a", Hardware: radio.Pixel4a})
		case "watch4":
			specs = append(specs, scenario.DeviceSpec{ID: "watch4", Hardware: radio.GalaxyWatch4})
		case "":
		default:
			return fmt.Errorf("unknown device %q", name)
		}
	}

	out, err := scenario.Run(scenario.Config{
		Plan:    plan,
		Spot:    spot,
		Speaker: kind,
		Devices: specs,
		Days:    days,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	c := out.Confusion
	fmt.Printf("custom plan %q, spot %s, %d day(s)\n", plan.Name, spot, days)
	fmt.Printf("thresholds:")
	for name, thr := range out.Thresholds {
		fmt.Printf(" %s=%.2f", name, thr)
	}
	fmt.Println()
	fmt.Printf("confusion:  TP=%d FP=%d TN=%d FN=%d\n", c.TP, c.FP, c.TN, c.FN)
	fmt.Printf("accuracy:   %.2f%%  precision: %.2f%%  recall: %.2f%%\n",
		100*c.Accuracy(), 100*c.Precision(), 100*c.Recall())
	return nil
}

func run(testbed, spot, speaker string, days int, seed int64, devices string, noTrack, records bool, dump string) error {
	cfg := voiceguard.ExperimentConfig{
		Spot:                 spot,
		Days:                 days,
		Seed:                 seed,
		DisableFloorTracking: noTrack,
		RecordCapture:        dump != "",
	}

	switch testbed {
	case "house":
		cfg.Testbed = voiceguard.TestbedHouse
	case "apartment":
		cfg.Testbed = voiceguard.TestbedApartment
	case "office":
		cfg.Testbed = voiceguard.TestbedOffice
	default:
		return fmt.Errorf("unknown testbed %q", testbed)
	}

	switch speaker {
	case "echo":
		cfg.Speaker = voiceguard.EchoDot
	case "ghm":
		cfg.Speaker = voiceguard.GoogleHomeMini
	default:
		return fmt.Errorf("unknown speaker %q", speaker)
	}

	for _, name := range strings.Split(devices, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "pixel5":
			cfg.Devices = append(cfg.Devices, voiceguard.Device{Name: name, Model: voiceguard.Pixel5})
		case "pixel4a":
			cfg.Devices = append(cfg.Devices, voiceguard.Device{Name: name, Model: voiceguard.Pixel4a})
		case "watch4":
			cfg.Devices = append(cfg.Devices, voiceguard.Device{Name: name, Model: voiceguard.GalaxyWatch4})
		case "":
		default:
			return fmt.Errorf("unknown device %q", name)
		}
	}

	res, err := voiceguard.RunExperiment(cfg)
	if err != nil {
		return err
	}

	if dump != "" {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		if err := res.WriteCapture(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("capture written to %s\n", dump)
	}

	fmt.Printf("%s, spot %s, %s, %d day(s), seed %d\n\n", cfg.Testbed, cfg.Spot, cfg.Speaker, days, seed)
	fmt.Printf("thresholds:")
	for name, thr := range res.Thresholds {
		fmt.Printf(" %s=%.2f", name, thr)
	}
	fmt.Println()
	m := res.Metrics
	fmt.Printf("confusion:  TP=%d FP=%d TN=%d FN=%d\n", m.TP, m.FP, m.TN, m.FN)
	fmt.Printf("accuracy:   %.2f%%\n", 100*m.Accuracy)
	fmt.Printf("precision:  %.2f%%\n", 100*m.Precision)
	fmt.Printf("recall:     %.2f%%\n", 100*m.Recall)
	fmt.Printf("mean verification: %.3fs\n", res.MeanVerification.Seconds())

	if records {
		fmt.Println("\nday  kind        verdict   verification  perceived")
		for _, c := range res.Commands {
			kind, verdict := "legit", "allowed"
			if c.Malicious {
				kind = "attack"
			}
			if c.Blocked {
				verdict = "BLOCKED"
			}
			fmt.Printf("%3d  %-10s %-9s %9.3fs %9.3fs\n",
				c.Day, kind, verdict, c.Verification.Seconds(), c.Perceived.Seconds())
		}
	}
	return nil
}
