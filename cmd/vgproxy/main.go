// Command vgproxy demonstrates the wire-plane Traffic Handler: an
// emulated cloud server, the transparent proxy in front of it, and an
// emulated speaker issuing commands through the proxy. Each command
// burst is held while the decision runs, then released or dropped
// according to -verdict.
//
// Usage:
//
//	vgproxy -commands 4 -hold 1.5s -verdict alternate
//	vgproxy -metrics-addr 127.0.0.1:9090   # metrics + /debug/pprof/ + /debug/trace
//	vgproxy -trace-out spans.jsonl -log-level debug -log-format json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"
	"time"

	"voiceguard"
	"voiceguard/internal/cliutil"
	"voiceguard/internal/emul"
	"voiceguard/internal/metrics"
	"voiceguard/internal/obs"
	"voiceguard/internal/trace"
)

// config carries the parsed command-line flags through run.
type config struct {
	commands    int
	hold        time.Duration
	verdict     string
	metricsAddr string
	logLevel    string
	logFormat   string
	traceOut    string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.commands, "commands", 4, "voice commands to issue")
	flag.DurationVar(&cfg.hold, "hold", 1500*time.Millisecond, "hold duration while deciding")
	flag.StringVar(&cfg.verdict, "verdict", "alternate", "decision policy: allow|block|alternate")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve metrics, /debug/pprof/, and /debug/trace over HTTP on this address (e.g. 127.0.0.1:9090)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: off|debug|info|warn|error")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "structured log format: text|json")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write every recorded span to this JSONL file")
	flag.Parse()

	if err := validateVerdict(cfg.verdict); err != nil {
		fmt.Fprintln(os.Stderr, "vgproxy:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vgproxy:", err)
		os.Exit(1)
	}
}

// validateVerdict rejects unknown -verdict values up front: a typo
// must fail loudly with usage, not silently behave like "alternate".
func validateVerdict(v string) error {
	return cliutil.OneOf("-verdict", v, "allow", "block", "alternate")
}

// newDebugMux assembles the HTTP surface served on -metrics-addr:
// the metrics snapshot at /, liveness and readiness probes, the
// flight-recorder dump at /debug/trace, and the standard pprof
// profiles. pprof's handlers only self-register on
// http.DefaultServeMux, so a private mux wires them explicitly.
func newDebugMux(ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", metrics.Handler(metrics.Default))
	mux.Handle("/healthz", obs.HealthHandler())
	mux.Handle("/readyz", obs.ReadyHandler(ready))
	mux.Handle("/debug/trace", trace.Handler(trace.Default))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(cfg config) error {
	if err := validateVerdict(cfg.verdict); err != nil {
		return err
	}
	closeTrace, err := trace.SetupFromFlags(trace.Default, cfg.logLevel, cfg.logFormat, cfg.traceOut)
	if err != nil {
		return err
	}
	defer func() { _ = closeTrace() }()

	cloud, err := emul.NewCloudServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("cloud server   %s\n", cloud.Addr())

	var ready atomic.Bool
	if cfg.metricsAddr != "" {
		lis, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("cannot bind -metrics-addr %q: %w", cfg.metricsAddr, err)
		}
		srv := &http.Server{Handler: newDebugMux(ready.Load)}
		go func() { _ = srv.Serve(lis) }()
		defer srv.Close()
		// Runtime telemetry (goroutines, heap, GC pauses, scheduler
		// latency) feeds the same registry while the endpoint is up.
		stopRuntime := obs.NewRuntime(nil).Start(5 * time.Second)
		defer stopRuntime()
		trace.Default.Logger().Info("debug endpoint bound",
			"addr", lis.Addr().String(),
			"endpoints", "/ /healthz /readyz /debug/trace /debug/pprof/")
		fmt.Printf("metrics        http://%s/ (text; ?format=json for JSON)\n", lis.Addr())
		fmt.Printf("probes         http://%s/healthz and /readyz\n", lis.Addr())
		fmt.Printf("debug          http://%s/debug/trace and /debug/pprof/\n", lis.Addr())
	}

	var counter atomic.Int64
	decide := func(ctx context.Context) bool {
		select {
		case <-time.After(cfg.hold):
		case <-ctx.Done():
			return false
		}
		switch cfg.verdict {
		case "allow":
			return true
		case "block":
			return false
		default: // alternate: odd commands legit, even malicious
			return counter.Add(1)%2 == 1
		}
	}

	proxy, err := voiceguard.StartLiveProxy("127.0.0.1:0", cloud.Addr(), decide, time.Second)
	if err != nil {
		return err
	}
	defer proxy.Close()
	ready.Store(true)
	fmt.Printf("guard proxy    %s (hold %v, policy %s)\n\n", proxy.Addr(), cfg.hold, cfg.verdict)

	for i := 1; i <= cfg.commands; i++ {
		speaker, err := emul.DialSpeaker(proxy.Addr())
		if err != nil {
			return err
		}
		start := time.Now()
		if err := speaker.SendCommand(3, 800); err != nil {
			_ = speaker.Close()
			return err
		}
		frame, err := speaker.Await(cfg.hold + 1500*time.Millisecond)
		switch {
		case err == nil && frame.Type == emul.MsgResponse:
			fmt.Printf("command %d: RELEASED — cloud responded after %.3fs\n", i, time.Since(start).Seconds())
		case errors.Is(err, emul.ErrSessionClosed):
			fmt.Printf("command %d: DROPPED — TLS session terminated by the cloud\n", i)
		case err != nil:
			fmt.Printf("command %d: DROPPED — no response (%v)\n", i, err)
		}
		_ = speaker.Close()
	}

	stats := proxy.Stats()
	fmt.Printf("\nheld %d bursts: released %d, dropped %d\n",
		stats.HeldBursts, stats.ReleasedBursts, stats.DroppedBursts)
	fmt.Printf("cloud executed %d command(s); %d session(s) aborted on sequence gaps\n",
		cloud.CompletedCommands(), cloud.SequenceAborts())
	snap := metrics.Default.Snapshot()
	fmt.Println("\n== slo ==")
	if err := obs.WriteReport(os.Stdout, obs.Evaluate(snap, voiceguard.LiveObjectives(), nil)); err != nil {
		return err
	}
	fmt.Println("\n== metrics ==")
	return metrics.WriteTable(os.Stdout, snap)
}
