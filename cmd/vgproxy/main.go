// Command vgproxy demonstrates the wire-plane Traffic Handler: an
// emulated cloud server, the transparent proxy in front of it, and an
// emulated speaker issuing commands through the proxy. Each command
// burst is held while the decision runs, then released or dropped
// according to -verdict.
//
// Usage:
//
//	vgproxy -commands 4 -hold 1.5s -verdict alternate
//	vgproxy -metrics-addr 127.0.0.1:9090   # serve live metrics over HTTP
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"voiceguard"
	"voiceguard/internal/emul"
	"voiceguard/internal/metrics"
)

func main() {
	var (
		commands    = flag.Int("commands", 4, "voice commands to issue")
		hold        = flag.Duration("hold", 1500*time.Millisecond, "hold duration while deciding")
		verdict     = flag.String("verdict", "alternate", "decision policy: allow|block|alternate")
		metricsAddr = flag.String("metrics-addr", "", "serve the metrics snapshot over HTTP on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()

	if err := validateVerdict(*verdict); err != nil {
		fmt.Fprintln(os.Stderr, "vgproxy:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*commands, *hold, *verdict, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "vgproxy:", err)
		os.Exit(1)
	}
}

// validateVerdict rejects unknown -verdict values up front: a typo
// must fail loudly with usage, not silently behave like "alternate".
func validateVerdict(v string) error {
	switch v {
	case "allow", "block", "alternate":
		return nil
	default:
		return fmt.Errorf("invalid -verdict %q (want allow, block, or alternate)", v)
	}
}

func run(commands int, hold time.Duration, verdict, metricsAddr string) error {
	if err := validateVerdict(verdict); err != nil {
		return err
	}
	cloud, err := emul.NewCloudServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("cloud server   %s\n", cloud.Addr())

	if metricsAddr != "" {
		lis, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: metrics.Handler(metrics.Default)}
		go func() { _ = srv.Serve(lis) }()
		defer srv.Close()
		fmt.Printf("metrics        http://%s/ (text; ?format=json for JSON)\n", lis.Addr())
	}

	var counter atomic.Int64
	decide := func(ctx context.Context) bool {
		select {
		case <-time.After(hold):
		case <-ctx.Done():
			return false
		}
		switch verdict {
		case "allow":
			return true
		case "block":
			return false
		default: // alternate: odd commands legit, even malicious
			return counter.Add(1)%2 == 1
		}
	}

	proxy, err := voiceguard.StartLiveProxy("127.0.0.1:0", cloud.Addr(), decide, time.Second)
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Printf("guard proxy    %s (hold %v, policy %s)\n\n", proxy.Addr(), hold, verdict)

	for i := 1; i <= commands; i++ {
		speaker, err := emul.DialSpeaker(proxy.Addr())
		if err != nil {
			return err
		}
		start := time.Now()
		if err := speaker.SendCommand(3, 800); err != nil {
			_ = speaker.Close()
			return err
		}
		frame, err := speaker.Await(hold + 1500*time.Millisecond)
		switch {
		case err == nil && frame.Type == emul.MsgResponse:
			fmt.Printf("command %d: RELEASED — cloud responded after %.3fs\n", i, time.Since(start).Seconds())
		case errors.Is(err, emul.ErrSessionClosed):
			fmt.Printf("command %d: DROPPED — TLS session terminated by the cloud\n", i)
		case err != nil:
			fmt.Printf("command %d: DROPPED — no response (%v)\n", i, err)
		}
		_ = speaker.Close()
	}

	stats := proxy.Stats()
	fmt.Printf("\nheld %d bursts: released %d, dropped %d\n",
		stats.HeldBursts, stats.ReleasedBursts, stats.DroppedBursts)
	fmt.Printf("cloud executed %d command(s); %d session(s) aborted on sequence gaps\n",
		cloud.CompletedCommands(), cloud.SequenceAborts())
	fmt.Println("\n== metrics ==")
	return metrics.WriteTable(os.Stdout, metrics.Default.Snapshot())
}
