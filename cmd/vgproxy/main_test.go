package main

import (
	"testing"
	"time"
)

func TestRunAlternatePolicy(t *testing.T) {
	if err := run(4, 50*time.Millisecond, "alternate"); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllowPolicy(t *testing.T) {
	if err := run(2, 30*time.Millisecond, "allow"); err != nil {
		t.Fatal(err)
	}
}

func TestRunBlockPolicy(t *testing.T) {
	if err := run(2, 30*time.Millisecond, "block"); err != nil {
		t.Fatal(err)
	}
}
