package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestRunAlternatePolicy(t *testing.T) {
	if err := run(4, 50*time.Millisecond, "alternate", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllowPolicy(t *testing.T) {
	if err := run(2, 30*time.Millisecond, "allow", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunBlockPolicy(t *testing.T) {
	if err := run(2, 30*time.Millisecond, "block", ""); err != nil {
		t.Fatal(err)
	}
}

func TestValidateVerdict(t *testing.T) {
	cases := []struct {
		verdict string
		wantErr bool
	}{
		{"allow", false},
		{"block", false},
		{"alternate", false},
		{"", true},
		{"allw", true},
		{"ALLOW", true},
		{"deny", true},
		{"alternate ", true},
	}
	for _, c := range cases {
		err := validateVerdict(c.verdict)
		if gotErr := err != nil; gotErr != c.wantErr {
			t.Errorf("validateVerdict(%q) error = %v, want error %v", c.verdict, err, c.wantErr)
		}
	}
}

func TestRunRejectsBadVerdict(t *testing.T) {
	if err := run(1, time.Millisecond, "deny", ""); err == nil {
		t.Fatal("run accepted an invalid verdict")
	}
}

func TestRunServesMetrics(t *testing.T) {
	// Hold a port briefly to learn a free address, then hand it to run.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	_ = lis.Close()

	done := make(chan error, 1)
	go func() { done <- run(1, 2*time.Second, "allow", addr) }()

	// While the command's hold is pending, the metrics endpoint must
	// answer in both formats.
	var body []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/?format=json", addr))
		if err == nil {
			body, err = io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics endpoint never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("metrics endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if _, ok := decoded["counters"]; !ok {
		t.Fatalf("metrics JSON missing counters: %s", body)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
