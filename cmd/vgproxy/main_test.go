package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// cfg builds a run configuration with logging off, as the demo tests
// only care about traffic outcomes.
func cfg(commands int, hold time.Duration, verdict, metricsAddr string) config {
	return config{
		commands:    commands,
		hold:        hold,
		verdict:     verdict,
		metricsAddr: metricsAddr,
		logLevel:    "off",
		logFormat:   "text",
	}
}

func TestRunAlternatePolicy(t *testing.T) {
	if err := run(cfg(4, 50*time.Millisecond, "alternate", "")); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllowPolicy(t *testing.T) {
	if err := run(cfg(2, 30*time.Millisecond, "allow", "")); err != nil {
		t.Fatal(err)
	}
}

func TestRunBlockPolicy(t *testing.T) {
	if err := run(cfg(2, 30*time.Millisecond, "block", "")); err != nil {
		t.Fatal(err)
	}
}

func TestValidateVerdict(t *testing.T) {
	cases := []struct {
		verdict string
		wantErr bool
	}{
		{"allow", false},
		{"block", false},
		{"alternate", false},
		{"", true},
		{"allw", true},
		{"ALLOW", true},
		{"deny", true},
		{"alternate ", true},
	}
	for _, c := range cases {
		err := validateVerdict(c.verdict)
		if gotErr := err != nil; gotErr != c.wantErr {
			t.Errorf("validateVerdict(%q) error = %v, want error %v", c.verdict, err, c.wantErr)
		}
	}
}

func TestRunRejectsBadVerdict(t *testing.T) {
	if err := run(cfg(1, time.Millisecond, "deny", "")); err == nil {
		t.Fatal("run accepted an invalid verdict")
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	c := cfg(1, time.Millisecond, "allow", "")
	c.logLevel = "loud"
	if err := run(c); err == nil {
		t.Fatal("run accepted an invalid log level")
	}
}

// TestRunRejectsTakenMetricsAddr asserts the bind failure surfaces as
// a clear error (main turns it into a non-zero exit).
func TestRunRejectsTakenMetricsAddr(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	err = run(cfg(1, time.Millisecond, "allow", lis.Addr().String()))
	if err == nil {
		t.Fatal("run bound an already-taken -metrics-addr")
	}
	if !strings.Contains(err.Error(), "-metrics-addr") {
		t.Fatalf("bind error does not name the flag: %v", err)
	}
}

// freePort grabs and releases an ephemeral port so run can bind it.
func freePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	_ = lis.Close()
	return addr
}

// get polls the URL until the server answers or the deadline passes.
func get(t *testing.T, url string) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return body
			}
			err = fmt.Errorf("status %d: %v", resp.StatusCode, rerr)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up: %v", url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRunServesMetrics(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() { done <- run(cfg(1, 2*time.Second, "allow", addr)) }()

	// While the command's hold is pending, the metrics endpoint must
	// answer in both formats.
	body := get(t, fmt.Sprintf("http://%s/?format=json", addr))
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("metrics endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if _, ok := decoded["counters"]; !ok {
		t.Fatalf("metrics JSON missing counters: %s", body)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunServesProbes asserts the liveness and readiness probes on
// the -metrics-addr mux: /healthz answers 200, /readyz flips to 200
// once the proxy is wired, and probe endpoints reject non-GET/HEAD.
func TestRunServesProbes(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() { done <- run(cfg(1, 2*time.Second, "allow", addr)) }()

	if body := get(t, fmt.Sprintf("http://%s/healthz", addr)); !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz body = %q, want ok", body)
	}
	if body := get(t, fmt.Sprintf("http://%s/readyz", addr)); !strings.Contains(string(body), "ready") {
		t.Fatalf("/readyz body = %q, want ready", body)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/healthz", addr), "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("405 Allow header = %q, want GET, HEAD", allow)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunServesDebugEndpoints asserts the -metrics-addr mux also
// exposes the pprof index and the flight-recorder trace dump.
func TestRunServesDebugEndpoints(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() { done <- run(cfg(1, 2*time.Second, "allow", addr)) }()

	if body := get(t, fmt.Sprintf("http://%s/debug/pprof/", addr)); !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles:\n%.200s", body)
	}
	body := get(t, fmt.Sprintf("http://%s/debug/trace", addr))
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" {
			continue
		}
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("/debug/trace line is not JSON: %v\n%s", err, line)
		}
	}
	if body := get(t, fmt.Sprintf("http://%s/debug/trace?format=chrome", addr)); !strings.Contains(string(body), "traceEvents") {
		t.Fatalf("/debug/trace?format=chrome missing traceEvents:\n%.200s", body)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunWritesTraceOut asserts -trace-out captures the demo's spans
// as parseable JSONL with command IDs.
func TestRunWritesTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spans.jsonl")
	c := cfg(1, 30*time.Millisecond, "allow", "")
	c.traceOut = out
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines, withID := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var span struct {
			CommandID uint64 `json:"command_id"`
			Stage     string `json:"stage"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad JSONL line: %v\n%s", err, sc.Text())
		}
		lines++
		if span.CommandID != 0 {
			withID++
		}
	}
	if lines == 0 {
		t.Fatal("-trace-out produced no spans")
	}
	if withID == 0 {
		t.Fatal("no span carries a command ID")
	}
}
