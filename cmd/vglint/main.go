// Command vglint runs the project's invariant analyzers (see
// internal/analysis) over the module: rngshare, simclock, hotalloc,
// tracectx, metriclabel, maporder, lockheld, and goroleak. It loads
// and type-checks the module with the standard library only, fans the
// per-package analysis across the internal/parallel pool, prints
// file:line:col findings (or machine-readable JSON with -json), and
// exits non-zero when any finding survives its //vglint:allow
// directives.
//
// Usage:
//
//	vglint ./...                 # whole module
//	vglint ./internal/radio      # one package
//	vglint -rules simclock ./... # a single rule
//	vglint -json ./...           # findings + summary as JSON for CI
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"voiceguard/internal/analysis"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vglint:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// run is the whole command, factored for tests: parse args, load the
// module rooted at (or above) cwd, analyze the matching packages, and
// render. Returns the exit code.
func run(args []string, cwd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings and a per-rule summary as JSON")
		rules   = fs.String("rules", "", "comma-separated rule subset to run (default: all)")
		list    = fs.Bool("list", false, "list the available rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "vglint:", err)
		fs.Usage()
		return 2
	}

	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "vglint:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "vglint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var pkgs []*analysis.Package
	for _, pkg := range mod.Packages() {
		ok, err := matchAny(mod, cwd, pkg, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "vglint:", err)
			return 2
		}
		if ok {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "vglint: no packages match %v\n", patterns)
		return 2
	}

	findings, summary := analysis.RunModule(mod, pkgs, analyzers)

	if *jsonOut {
		if err := writeJSON(stdout, root, findings, summary); err != nil {
			fmt.Fprintln(stderr, "vglint:", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "vglint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectRules resolves the -rules flag against the registry.
func selectRules(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := analysis.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run vglint -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no rules")
	}
	return out, nil
}

// matchAny reports whether the package matches any of the go-style
// package patterns, resolved relative to the invocation directory:
// "./..." and "./dir/..." recursive patterns, "./dir" exact
// directories, and plain import paths with an optional "/..." suffix.
func matchAny(mod *analysis.Module, cwd string, pkg *analysis.Package, patterns []string) (bool, error) {
	for _, pat := range patterns {
		ok, err := match(mod, cwd, pkg, pat)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func match(mod *analysis.Module, cwd string, pkg *analysis.Package, pat string) (bool, error) {
	if pat == "all" {
		return true, nil
	}
	if strings.HasPrefix(pat, ".") {
		// Filesystem-relative pattern.
		rec := false
		dir := pat
		if d, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, dir = true, d
			if dir == "." || dir == "" {
				dir = "."
			}
		}
		abs, err := filepath.Abs(filepath.Join(cwd, dir))
		if err != nil {
			return false, err
		}
		if rec {
			return pkg.Dir == abs || strings.HasPrefix(pkg.Dir, abs+string(filepath.Separator)), nil
		}
		return pkg.Dir == abs, nil
	}
	// Import-path pattern.
	if p, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/"), nil
	}
	return pkg.Path == pat, nil
}

// jsonFinding is the machine-readable form of one finding, consumed
// by CI annotation tooling.
type jsonFinding struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the -json document: the findings plus the scan
// summary (packages scanned, per-rule finding/suppression counts).
type jsonReport struct {
	Findings []jsonFinding    `json:"findings"`
	Summary  analysis.Summary `json:"summary"`
}

func writeJSON(w io.Writer, root string, findings []analysis.Diagnostic, summary analysis.Summary) error {
	out := jsonReport{Findings: make([]jsonFinding, 0, len(findings)), Summary: summary}
	for _, d := range findings {
		out.Findings = append(out.Findings, jsonFinding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath renders a file path relative to the module root for stable,
// environment-independent output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}
