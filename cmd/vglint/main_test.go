package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule writes a throwaway module named voiceguard with one
// package, internal/obs, whose source is given, and returns its root.
func scratchModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module voiceguard\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "obs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obs.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

const violatingSrc = `package obs

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

const suppressedSrc = `package obs

// Keys carries a deliberate, explained escape.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//vglint:allow maporder scratch fixture: order is documented as unspecified
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// TestExitCodes drives the command end to end through run(): 0 for a
// clean tree, 1 for surviving findings, 2 for usage and pattern
// errors.
func TestExitCodes(t *testing.T) {
	moduleCwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	violating := scratchModule(t, violatingSrc)
	suppressed := scratchModule(t, suppressedSrc)

	cases := []struct {
		name     string
		args     []string
		cwd      string
		exit     int
		inStdout string
		inStderr string
	}{
		{
			name: "clean package exits 0",
			args: []string{"voiceguard/internal/simtime"},
			cwd:  moduleCwd,
			exit: 0,
		},
		{
			name:     "violation exits 1",
			args:     []string{"./..."},
			cwd:      violating,
			exit:     1,
			inStdout: "maporder",
			inStderr: "1 finding(s)",
		},
		{
			name: "suppressed violation exits 0",
			args: []string{"./..."},
			cwd:  suppressed,
			exit: 0,
		},
		{
			name:     "unknown rule exits 2",
			args:     []string{"-rules", "nosuchrule", "./..."},
			cwd:      moduleCwd,
			exit:     2,
			inStderr: `unknown rule "nosuchrule"`,
		},
		{
			name:     "no matching packages exits 2",
			args:     []string{"voiceguard/internal/nosuchpkg"},
			cwd:      moduleCwd,
			exit:     2,
			inStderr: "no packages match",
		},
		{
			name:     "bad flag exits 2",
			args:     []string{"-nosuchflag"},
			cwd:      moduleCwd,
			exit:     2,
			inStderr: "flag provided but not defined",
		},
		{
			name:     "list exits 0 and names the rules",
			args:     []string{"-list"},
			cwd:      moduleCwd,
			exit:     0,
			inStdout: "maporder",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, tc.cwd, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, tc.exit, stdout.String(), stderr.String())
			}
			if tc.inStdout != "" && !strings.Contains(stdout.String(), tc.inStdout) {
				t.Errorf("stdout missing %q:\n%s", tc.inStdout, stdout.String())
			}
			if tc.inStderr != "" && !strings.Contains(stderr.String(), tc.inStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.inStderr, stderr.String())
			}
		})
	}
}

// TestJSONReport pins the -json document shape: a findings array plus
// the per-rule summary block with finding and suppression counts.
func TestJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "./..."}, scratchModule(t, violatingSrc), &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, stderr.String())
	}
	var report struct {
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Rule string `json:"rule"`
		} `json:"findings"`
		Summary struct {
			Packages int `json:"packages_scanned"`
			Rules    map[string]struct {
				Findings   int `json:"findings"`
				Suppressed int `json:"suppressed"`
			} `json:"rules"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != 1 || report.Findings[0].Rule != "maporder" {
		t.Fatalf("findings = %+v, want one maporder finding", report.Findings)
	}
	if report.Findings[0].File != "internal/obs/obs.go" {
		t.Errorf("finding file = %q, want module-relative internal/obs/obs.go", report.Findings[0].File)
	}
	if report.Summary.Packages != 1 {
		t.Errorf("packages_scanned = %d, want 1", report.Summary.Packages)
	}
	if rs := report.Summary.Rules["maporder"]; rs.Findings != 1 || rs.Suppressed != 0 {
		t.Errorf("maporder stats = %+v, want {1 0}", rs)
	}
	if _, ok := report.Summary.Rules["lockheld"]; !ok {
		t.Error("summary is missing zero-count rules; every enabled rule must report")
	}

	// The suppressed variant flips the counters: no findings, one
	// suppression, exit 0.
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-json", "./..."}, scratchModule(t, suppressedSrc), &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", got, stderr.String())
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != 0 {
		t.Fatalf("findings = %+v, want none", report.Findings)
	}
	if rs := report.Summary.Rules["maporder"]; rs.Findings != 0 || rs.Suppressed != 1 {
		t.Errorf("maporder stats = %+v, want {0 1}", rs)
	}
}
