package voiceguard

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"voiceguard/internal/pcap"
	"voiceguard/internal/proxy"
	"voiceguard/internal/recognize"
	"voiceguard/internal/trace"
)

// speakerWireIP / cloudWireIP are the synthetic addresses the live
// guard uses when converting stream records into packet records for
// the recognizer. The guard sits inline on a single speaker-to-cloud
// path, so the endpoints' identities are fixed by construction.
const (
	speakerWireIP = "10.99.0.2"
	cloudWireIP   = "10.99.0.1"
)

// LiveGuard is the full Traffic Processing Module on real sockets:
// a transparent TCP proxy whose client-to-cloud byte stream is parsed
// into TLS records, classified by the same streaming recognizer the
// simulation uses, and held/released/dropped according to the
// recognizer's verdict and the DecisionFunc.
//
// Unlike LiveProxy (which holds every burst), LiveGuard only holds
// spikes the recognizer is still classifying, immediately releases
// response-phase spikes, and consults the DecisionFunc only for
// recognized voice commands — the paper's Fig. 2 pipeline end to end.
type LiveGuard struct {
	tcp    *proxy.TCP
	decide DecisionFunc
	idle   time.Duration

	mu       sync.Mutex
	closing  bool
	sessions map[*proxy.Session]*liveSession
	stats    LiveGuardStats

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// LiveGuardStats counts the guard's traffic-handling outcomes.
type LiveGuardStats struct {
	CommandsHeld     int // spikes recognized as voice commands
	CommandsReleased int // legitimate commands forwarded
	CommandsDropped  int // malicious commands discarded
	NonCommands      int // spikes released without a decision query
}

// liveSession is per-connection recognizer state.
type liveSession struct {
	rec       *recognize.Recognizer
	buf       []byte // unparsed stream bytes
	srcPort   int
	deciding  bool
	idleTimer *time.Timer
	cmd       trace.CommandID // lifecycle ID of the spike being classified
	spikeAt   time.Time       // wall-clock start of that spike
}

// StartLiveGuard launches the wire-plane guard: listen on listenAddr,
// forward to upstreamAddr, and adjudicate recognized voice commands
// with decide. idleGap separates traffic spikes (the paper uses one
// second).
func StartLiveGuard(listenAddr, upstreamAddr string, decide DecisionFunc, idleGap time.Duration, opts ...LiveOption) (*LiveGuard, error) {
	if decide == nil {
		return nil, fmt.Errorf("voiceguard: a DecisionFunc is required")
	}
	if idleGap <= 0 {
		idleGap = time.Second
	}
	var lo liveOptions
	for _, opt := range opts {
		opt(&lo)
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &LiveGuard{
		decide:   decide,
		idle:     idleGap,
		sessions: make(map[*proxy.Session]*liveSession),
		ctx:      ctx,
		cancel:   cancel,
	}

	nextPort := 40000
	popts := append(lo.proxyOpts(),
		proxy.WithTap(func(s *proxy.Session, data []byte) {
			g.mu.Lock()
			if g.closing {
				g.mu.Unlock()
				return
			}
			ls, ok := g.sessions[s]
			if !ok {
				nextPort++
				ls = g.newSession(nextPort)
				g.sessions[s] = ls
				// Per-session recognizer state must die with the session:
				// a long-lived gateway churns through thousands of
				// connections, and entries that outlive their session are
				// an unbounded leak. The watcher reaps on Done.
				g.wg.Add(1)
				go g.watchSession(s)
			}
			g.feedLocked(s, ls, data)
			g.mu.Unlock()
		}))
	tcp, err := proxy.NewTCP(listenAddr,
		func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", upstreamAddr)
		},
		popts...)
	if err != nil {
		cancel()
		return nil, err
	}
	g.tcp = tcp
	return g, nil
}

// watchSession reaps one session's recognizer state when the
// transport session terminates, disarming any pending idle timer so
// it cannot fire against a dead connection.
func (g *LiveGuard) watchSession(s *proxy.Session) {
	defer g.wg.Done()
	<-s.Done()
	g.mu.Lock()
	if ls, ok := g.sessions[s]; ok {
		g.disarmIdleTimer(ls)
		delete(g.sessions, s)
	}
	g.mu.Unlock()
}

// TrackedSessions returns the number of connections the guard holds
// per-session recognizer state for — the leak observable: it must
// return to zero once every speaker has disconnected.
func (g *LiveGuard) TrackedSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// newSession builds the per-connection recognizer, pinned to the
// wire-plane endpoint identities.
func (g *LiveGuard) newSession(srcPort int) *liveSession {
	rec := recognize.NewEcho(speakerWireIP)
	rec.IdleGap = g.idle
	rec.Tracker.ForceAddress(netip.MustParseAddr(cloudWireIP))
	return &liveSession{rec: rec, srcPort: srcPort}
}

// feedLocked parses newly arrived stream bytes into records and runs
// the recognizer over them. Callers hold g.mu.
func (g *LiveGuard) feedLocked(s *proxy.Session, ls *liveSession, data []byte) {
	ls.buf = append(ls.buf, data...)
	now := time.Now()
	for {
		records, rest, ok := splitOneRecord(ls.buf)
		if !ok {
			return
		}
		ls.buf = rest
		p := pcap.Packet{
			Time:  now,
			SrcIP: speakerWireIP, SrcPort: ls.srcPort,
			DstIP: cloudWireIP, DstPort: 443,
			Proto:   pcap.TCP,
			Len:     len(records),
			Payload: records,
		}
		g.handleAction(s, ls, ls.rec.Feed(p))
	}
}

// handleAction applies one recognizer verdict. Callers hold g.mu.
func (g *LiveGuard) handleAction(s *proxy.Session, ls *liveSession, action recognize.Action) {
	switch action {
	case recognize.ActionHold:
		ls.cmd = trace.Default.NextID()
		ls.spikeAt = time.Now()
		ls.rec.BindCommand(ls.cmd)
		s.BindCommand(ls.cmd)
		s.Hold()
		trace.Default.Record(trace.Event(ls.cmd, trace.StageLive, "spike_start", ls.spikeAt,
			trace.Int("src_port", ls.srcPort)))
		g.armIdleTimer(s, ls)
	case recognize.ActionNone:
		if s.Holding() {
			g.armIdleTimer(s, ls)
		}
	case recognize.ActionCommand:
		g.disarmIdleTimer(ls)
		g.traceClassify(ls, "command")
		if ls.deciding {
			return
		}
		ls.deciding = true
		g.stats.CommandsHeld++
		mLiveHeld.Inc()
		g.wg.Add(1)
		go g.adjudicate(s, ls.cmd)
	case recognize.ActionRelease:
		g.disarmIdleTimer(ls)
		g.traceClassify(ls, "release")
		g.stats.NonCommands++
		mLiveNonCommands.Inc()
		_ = s.Release()
	}
}

// traceClassify records the recognize-stage span for the spike whose
// classification just completed. Callers hold g.mu.
func (g *LiveGuard) traceClassify(ls *liveSession, action string) {
	trace.Default.Record(trace.Span{
		Command: ls.cmd,
		Stage:   trace.StageRecognize,
		Name:    "classify",
		Start:   ls.spikeAt,
		End:     time.Now(),
		Attrs:   []trace.Attr{trace.String("action", action)},
	})
}

// armIdleTimer schedules spike finalisation; an undecided spike whose
// traffic stops is released, as the simulation guard does.
func (g *LiveGuard) armIdleTimer(s *proxy.Session, ls *liveSession) {
	g.disarmIdleTimer(ls)
	ls.idleTimer = time.AfterFunc(g.idle, func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		if ls.rec.EndSpike() == recognize.ActionRelease {
			g.traceClassify(ls, "release")
			g.stats.NonCommands++
			mLiveNonCommands.Inc()
			_ = s.Release()
		}
	})
}

func (g *LiveGuard) disarmIdleTimer(ls *liveSession) {
	if ls.idleTimer != nil {
		ls.idleTimer.Stop()
		ls.idleTimer = nil
	}
}

// adjudicate consults the DecisionFunc for one held command.
func (g *LiveGuard) adjudicate(s *proxy.Session, id trace.CommandID) {
	defer g.wg.Done()
	start := time.Now()
	ctx := context.WithValue(trace.WithCommand(g.ctx, id), speakerAddrKey{}, s.ClientAddr())
	legit := g.decide(ctx)
	end := time.Now()
	mLiveHoldSeconds.ObserveExemplar(end.Sub(start), uint64(id))
	outcome := trace.OutcomeDrop
	if legit {
		outcome = trace.OutcomeRelease
	}
	trace.Default.Record(trace.Span{
		Command: id,
		Stage:   trace.StageDecision,
		Name:    "live_decide",
		Start:   start,
		End:     end,
		Attrs:   []trace.Attr{trace.String(trace.AttrOutcome, outcome)},
	})
	g.mu.Lock()
	defer g.mu.Unlock()
	if ls, ok := g.sessions[s]; ok {
		ls.deciding = false
	}
	if legit {
		g.stats.CommandsReleased++
		mLiveReleased.Inc()
		lvLiveRelease.Inc()
		_ = s.Release()
		return
	}
	g.stats.CommandsDropped++
	mLiveDropped.Inc()
	lvLiveDrop.Inc()
	s.Drop()
}

// Addr returns the guard's listen address.
func (g *LiveGuard) Addr() string { return g.tcp.Addr() }

// Stats returns the guard's counters.
func (g *LiveGuard) Stats() LiveGuardStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close stops the guard and waits for in-flight decisions. Setting
// closing under g.mu first means no tap can start a new session or
// adjudication (wg.Add) concurrently with the wg.Wait below.
func (g *LiveGuard) Close() error {
	g.mu.Lock()
	g.closing = true
	g.mu.Unlock()
	g.cancel()
	err := g.tcp.Close()
	g.wg.Wait()
	g.mu.Lock()
	for s, ls := range g.sessions {
		g.disarmIdleTimer(ls)
		delete(g.sessions, s)
	}
	g.mu.Unlock()
	return err
}

// splitOneRecord extracts one complete TLS record from the front of
// buf, returning (record bytes, remainder, true), or ok=false if the
// buffer does not yet hold a full record.
func splitOneRecord(buf []byte) (record, rest []byte, ok bool) {
	const headerLen = 5
	if len(buf) < headerLen {
		return nil, buf, false
	}
	n := int(buf[3])<<8 | int(buf[4])
	total := headerLen + n
	if len(buf) < total {
		return nil, buf, false
	}
	return buf[:total:total], buf[total:], true
}
