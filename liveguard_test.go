package voiceguard

import (
	"context"
	"errors"
	"testing"
	"time"

	"voiceguard/internal/emul"
	"voiceguard/internal/trafficgen"
)

// liveFixture wires cloud ← guard ← speaker on loopback with a
// controllable decision channel.
type liveFixture struct {
	cloud    *emul.CloudServer
	guard    *LiveGuard
	verdicts chan bool
}

func newLiveFixture(t *testing.T, idleGap time.Duration) *liveFixture {
	t.Helper()
	cloud, err := emul.NewCloudServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cloud.Close() })

	verdicts := make(chan bool, 8)
	guard, err := StartLiveGuard("127.0.0.1:0", cloud.Addr(), func(ctx context.Context) bool {
		select {
		case v := <-verdicts:
			return v
		case <-ctx.Done():
			return false
		}
	}, idleGap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = guard.Close() })
	return &liveFixture{cloud: cloud, guard: guard, verdicts: verdicts}
}

// commandLengths is a marker-bearing Echo command phase: activation
// packet, p-138 marker within the first five, then upload records.
var commandLengths = []int{277, 138, 90, 113, 131, 1100, 1200, 1150}

// responseLengths is a response-phase spike: p-77/p-33 adjacent.
var responseLengths = []int{90, 77, 33, 162, 210, 350}

func waitStats(t *testing.T, g *LiveGuard, cond func(LiveGuardStats) bool) LiveGuardStats {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s := g.Stats(); cond(s) {
			return s
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stats condition never met: %+v", g.Stats())
	return LiveGuardStats{}
}

func TestLiveGuardReleasesLegitimateCommand(t *testing.T) {
	f := newLiveFixture(t, 300*time.Millisecond)
	speaker, err := emul.DialSpeaker(f.guard.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	f.verdicts <- true
	if err := speaker.SendPattern(commandLengths, emul.MsgCommand); err != nil {
		t.Fatal(err)
	}
	// End-of-command frame so the cloud answers once released.
	if err := speaker.SendPattern([]int{60}, emul.MsgEnd); err != nil {
		t.Fatal(err)
	}
	frame, err := speaker.Await(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != emul.MsgResponse {
		t.Fatalf("frame = %c, want response", frame.Type)
	}
	stats := waitStats(t, f.guard, func(s LiveGuardStats) bool { return s.CommandsReleased == 1 })
	if stats.CommandsHeld != 1 || stats.CommandsDropped != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if f.cloud.CompletedCommands() != 1 {
		t.Fatalf("cloud completed %d commands", f.cloud.CompletedCommands())
	}
}

func TestLiveGuardDropsMaliciousCommand(t *testing.T) {
	f := newLiveFixture(t, 300*time.Millisecond)
	speaker, err := emul.DialSpeaker(f.guard.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	f.verdicts <- false
	if err := speaker.SendPattern(commandLengths, emul.MsgCommand); err != nil {
		t.Fatal(err)
	}
	if err := speaker.SendPattern([]int{60}, emul.MsgEnd); err != nil {
		t.Fatal(err)
	}
	waitStats(t, f.guard, func(s LiveGuardStats) bool { return s.CommandsDropped == 1 })

	// The speaker keeps talking; the cloud aborts on the sequence gap.
	if err := speaker.SendHeartbeat(); err != nil {
		t.Fatal(err)
	}
	if _, err := speaker.Await(3 * time.Second); !errors.Is(err, emul.ErrSessionClosed) && err == nil {
		t.Fatalf("await after drop: %v, want session closed or reset", err)
	}
	if f.cloud.CompletedCommands() != 0 {
		t.Fatalf("dropped command executed: %d", f.cloud.CompletedCommands())
	}
}

func TestLiveGuardReleasesResponseSpikeWithoutQuery(t *testing.T) {
	f := newLiveFixture(t, 300*time.Millisecond)
	speaker, err := emul.DialSpeaker(f.guard.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	// A response-phase spike: the guard must classify and release it
	// without consulting the DecisionFunc (the verdicts channel stays
	// empty; a query would block forever).
	if err := speaker.SendPattern(responseLengths, emul.MsgCommand); err != nil {
		t.Fatal(err)
	}
	stats := waitStats(t, f.guard, func(s LiveGuardStats) bool { return s.NonCommands >= 1 })
	if stats.CommandsHeld != 0 {
		t.Fatalf("response spike triggered a decision query: %+v", stats)
	}
}

func TestLiveGuardIgnoresHeartbeats(t *testing.T) {
	f := newLiveFixture(t, 200*time.Millisecond)
	speaker, err := emul.DialSpeaker(f.guard.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	// Heartbeats are 41-byte application-data records; they must pass
	// straight through with no holding and get acknowledged.
	for i := 0; i < 3; i++ {
		if err := speaker.SendPattern([]int{trafficgen.HeartbeatLen}, emul.MsgHeartbeat); err != nil {
			t.Fatal(err)
		}
		frame, err := speaker.Await(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if frame.Type != emul.MsgAck {
			t.Fatalf("heartbeat reply = %c", frame.Type)
		}
		time.Sleep(250 * time.Millisecond) // separate spikes
	}
	stats := f.guard.Stats()
	if stats.CommandsHeld != 0 || stats.NonCommands != 0 {
		t.Fatalf("heartbeats disturbed the guard: %+v", stats)
	}
}

func TestLiveGuardShortSpikeReleasedOnIdle(t *testing.T) {
	f := newLiveFixture(t, 200*time.Millisecond)
	speaker, err := emul.DialSpeaker(f.guard.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	// Two records then silence: below the classification window, so
	// the idle timer must release the held bytes.
	if err := speaker.SendPattern([]int{90, 101}, emul.MsgCommand); err != nil {
		t.Fatal(err)
	}
	waitStats(t, f.guard, func(s LiveGuardStats) bool { return s.NonCommands >= 1 })
}

func TestLiveGuardValidation(t *testing.T) {
	if _, err := StartLiveGuard("127.0.0.1:0", "127.0.0.1:1", nil, time.Second); err == nil {
		t.Fatal("nil decision accepted")
	}
}
