package voiceguard

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"voiceguard/internal/emul"
	"voiceguard/internal/guard"
)

// wedged is a DecisionFunc that never delivers a verdict — the
// crashed-callback case the hold-deadline exists for. It unblocks
// only when the proxy shuts down, so Close() can still join the
// adjudication goroutine.
func wedged(ctx context.Context) bool {
	<-ctx.Done()
	return false
}

// echoUpstream runs a byte-echo server for LiveProxy tests.
func echoUpstream(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	t.Cleanup(func() {
		_ = lis.Close()
		wg.Wait()
	})
	return lis.Addr().String()
}

// Acceptance regression: a wedged decision callback on the live proxy
// cannot hold a session forever. Under a fail-open policy the
// hold-deadline releases the held burst, so the upstream echo comes
// back even though no verdict ever arrives.
func TestLiveProxyWedgedDecisionReleasesAtDeadline(t *testing.T) {
	lp, err := StartLiveProxy("127.0.0.1:0", echoUpstream(t), wedged, 200*time.Millisecond,
		WithHoldDeadline(150*time.Millisecond, guard.DegradedFailOpen))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lp.Close() })

	client, err := net.DialTimeout("tcp", lp.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	msg := []byte("no verdict will ever come")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("held bytes never released: %v", err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
}

// Same wedge under fail-closed: the deadline drops the held command,
// the cloud never executes it, and the session is no longer holding —
// blocked, not stuck.
func TestLiveGuardWedgedDecisionDropsAtDeadline(t *testing.T) {
	cloud, err := emul.NewCloudServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cloud.Close() })

	g, err := StartLiveGuard("127.0.0.1:0", cloud.Addr(), wedged, 300*time.Millisecond,
		WithHoldDeadline(400*time.Millisecond, guard.DegradedFailClosed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close() })

	speaker, err := emul.DialSpeaker(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer speaker.Close()

	if err := speaker.SendPattern(commandLengths, emul.MsgCommand); err != nil {
		t.Fatal(err)
	}
	if err := speaker.SendPattern([]int{60}, emul.MsgEnd); err != nil {
		t.Fatal(err)
	}
	waitStats(t, g, func(s LiveGuardStats) bool { return s.CommandsHeld == 1 })

	// Wait out the deadline, then verify every session resolved its
	// hold without a verdict ever arriving.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		holding := false
		for _, s := range g.tcp.Sessions() {
			if s.Holding() {
				holding = true
			}
		}
		if !holding {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, s := range g.tcp.Sessions() {
		if s.Holding() {
			t.Fatal("session still holding long after the hold-deadline")
		}
	}
	if got := cloud.CompletedCommands(); got != 0 {
		t.Fatalf("fail-closed deadline executed the command anyway: %d", got)
	}
}
